package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paramecium/internal/mmu"
	"paramecium/internal/obj"
)

// The P-series measures the concurrent invocation plane. Unlike the
// T/F experiments, which report deterministic virtual cycles, the
// P-series measures host wall-clock throughput: parallel speedup is a
// property of the real machine the simulation runs on, so these
// numbers vary with hardware and load. The shape — serialized flat,
// concurrent scaling with workers — is the claim under test.

// parallelWorkers is the worker sweep used by both P experiments.
func parallelWorkers() []int {
	ws := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		ws = append(ws, n)
	}
	return ws
}

// throughput runs total ops split across workers and reports ops/ms
// of wall time.
func throughput(workers, total int, op func()) float64 {
	each := total / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				op()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(workers*each) / (elapsed.Seconds() * 1000)
}

// SharedCounterHandle boots a single-CPU world with a concurrency-safe
// counter in a server domain and returns one pre-resolved cross-domain
// handle from a client domain plus the counter itself — the
// shared-handle fixture used by both the P1 experiment and the
// root-level BenchmarkP* family.
func SharedCounterHandle() (obj.MethodHandle, *atomic.Int64) {
	h, n, _ := SharedCounterHandleCPUs(1)
	return h, n
}

// SharedCounterHandleCPUs is SharedCounterHandle on an ncpu-CPU
// machine, also returning the world so callers can read per-CPU stats.
func SharedCounterHandleCPUs(ncpu int) (obj.MethodHandle, *atomic.Int64, *World) {
	w := NewWorldCPUs(ncpu)
	decl := obj.MustInterfaceDecl("bench.atomic.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	server := obj.New("atomic-counter", w.K.Meter)
	n := new(atomic.Int64)
	bi, err := server.AddInterface(decl, n)
	if err != nil {
		panic(err)
	}
	// Bound in the buffer-threading form, returning the counter's state
	// pointer (one result word, same charge as the boxed count it used
	// to return): callers that thread result buffers — the vectored
	// plane's AddInto path — complete whole invocations with zero
	// allocations.
	bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
		n.Add(1)
		return append(out, n), nil
	})
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	if err := w.K.Register("/services/atomic", server, serverDom.Ctx); err != nil {
		panic(err)
	}
	inc, err := clientDom.ResolveMethod("/services/atomic", "bench.atomic.v1", "inc")
	if err != nil {
		panic(err)
	}
	return inc, n, w
}

// P1ParallelProxyCall compares serialized and concurrent cross-domain
// invocation at increasing worker counts. The serialized column
// models the pre-frame-table design, where one pending slot per
// interface forced one call at a time.
func P1ParallelProxyCall() Table {
	t := Table{
		ID:     "P1",
		Title:  "Concurrent cross-domain invocation (host ops/ms, higher is better)",
		Claim:  `cross-domain calls carry per-call frames, so one imported interface serves as many concurrent callers as the hardware allows`,
		Header: []string{"workers", "serialized ops/ms", "concurrent ops/ms", "speedup"},
	}
	inc, _ := SharedCounterHandle()

	const total = 64_000
	var mu sync.Mutex
	for _, workers := range parallelWorkers() {
		serialized := throughput(workers, total, func() {
			mu.Lock()
			_, _ = inc.Call()
			mu.Unlock()
		})
		concurrent := throughput(workers, total, func() { _, _ = inc.Call() })
		speedup := 0.0
		if serialized > 0 {
			speedup = concurrent / serialized
		}
		t.AddRow(workers, fmt.Sprintf("%.0f", serialized), fmt.Sprintf("%.0f", concurrent),
			fmt.Sprintf("%.2fx", speedup))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host wall-clock at GOMAXPROCS=%d; not deterministic virtual cycles", runtime.GOMAXPROCS(0)),
		"serialized = every call behind one mutex, the old per-interface pending slot")
	return t
}

// P2ParallelLookup measures name-space lookup scaling: the
// copy-on-write tree serves lock-free reads, so lookups should scale
// with workers while a mutation churns in the background.
func P2ParallelLookup() Table {
	t := Table{
		ID:     "P2",
		Title:  "Concurrent name-space lookup (host ops/ms, higher is better)",
		Claim:  `lookups walk an immutable snapshot of the copy-on-write tree, taking no lock on the hot path`,
		Header: []string{"workers", "lookup ops/ms", "with writer churn"},
	}
	w := NewWorld()
	leaf := obj.New("leaf", w.K.Meter)
	if err := w.K.Space.Register("/a/b/c/d", leaf); err != nil {
		panic(err)
	}

	const total = 256_000
	for _, workers := range parallelWorkers() {
		quiet := throughput(workers, total, func() { _, _ = w.K.Space.Bind("/a/b/c/d") })

		stop := make(chan struct{})
		var churn sync.WaitGroup
		churn.Add(1)
		go func() {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/churn/x%d", i%64)
				if err := w.K.Space.Register(path, leaf); err == nil {
					_ = w.K.Space.Unregister(path)
				}
			}
		}()
		contended := throughput(workers, total, func() { _, _ = w.K.Space.Bind("/a/b/c/d") })
		close(stop)
		churn.Wait()

		t.AddRow(workers, fmt.Sprintf("%.0f", quiet), fmt.Sprintf("%.0f", contended))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host wall-clock at GOMAXPROCS=%d; not deterministic virtual cycles", runtime.GOMAXPROCS(0)))
	return t
}

// P3CPUTopology sweeps the virtual CPU count: the same parallel
// cross-domain workload on machines of 1, 2, 4 and 8 CPUs, with as
// many workers as CPUs. Beyond throughput it reports where the TLB
// traffic landed — with per-CPU TLBs the misses spread across the
// topology instead of funnelling through one shared TLB behind one
// global mutex.
func P3CPUTopology() Table {
	t := Table{
		ID:     "P3",
		Title:  "CPU topology sweep: parallel cross-domain invocation (host ops/ms, higher is better)",
		Claim:  `per-CPU context registers, TLBs and run queues remove every global serialization point from the invocation plane: unrelated calls translate, cross and dispatch fully in parallel`,
		Header: []string{"cpus", "ops/ms", "CPUs with TLB traffic", "TLB misses (sum)"},
	}
	const total = 32_000
	for _, ncpu := range []int{1, 2, 4, 8} {
		inc, _, w := SharedCounterHandleCPUs(ncpu)
		ops := throughput(ncpu, total, func() { _, _ = inc.Call() })
		populated := 0
		var misses uint64
		for i := 0; i < ncpu; i++ {
			s := w.K.Machine.MMU.TLBStatsOn(mmu.CPUID(i))
			if s.Misses > 0 {
				populated++
			}
			misses += s.Misses
		}
		t.AddRow(ncpu, fmt.Sprintf("%.0f", ops), populated, misses)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host wall-clock at GOMAXPROCS=%d; not deterministic virtual cycles", runtime.GOMAXPROCS(0)),
		"workers = cpus; each call claims a virtual CPU, so misses partition across the topology")
	return t
}

// AllParallel runs the P-series experiments.
func AllParallel() []Table {
	return []Table{
		P1ParallelProxyCall(),
		P2ParallelLookup(),
		P3CPUTopology(),
		P5BatchSweep(),
		P6BulkTransfer(),
		P7RingStream(),
		P8MixedTargetSweep(),
		P9ScalingSweep(),
	}
}
