// Command benchgate is the CI benchmark-regression gate. It parses
// `go test -bench` output, writes a machine-readable JSON report of
// every benchmark's metrics, and — when given a baseline — fails if
// any gated hot-path benchmark regressed beyond the threshold.
//
// Gating compares cycles/op, the simulation's deterministic virtual
// cost: it does not vary with CI hardware, load or GOMAXPROCS, so a
// tight threshold holds without flakes. Host ns/op is recorded in the
// report for humans (and for the parallel P-series, which has no
// virtual-cycle metric) but is not gated by default because wall
// clock on shared runners is noise. Allocation counts ARE
// deterministic, so -allocgate holds named benchmarks' allocs/op at
// the baseline exactly — the zero-allocation invocation fast path
// stays at 0 allocs/op or the gate fails.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 2000x . | tee bench.out
//	benchgate -in bench.out -out BENCH_invoke.json \
//	          -baseline ci/bench_baseline.json -threshold 0.20
//
// To refresh the committed baseline after an intentional cost change,
// rerun the same benchmark command and copy the -out file over
// ci/bench_baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	CyclesPerOp float64 `json:"cycles_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// iterations is the run's actual iteration count (the second
	// column of the bench line), used only to cross-check a claimed
	// "Nx" -benchtime; it is not part of the JSON schema.
	iterations uint64
	// hasAllocs records that the bench line actually carried an
	// allocs/op column (a true 0 is indistinguishable from a missing
	// metric in AllocsPerOp alone). The allocs gate requires it, so a
	// gated benchmark that silently drops b.ReportAllocs fails instead
	// of passing as zero. Parse-side only, not in the JSON schema.
	hasAllocs bool
}

// Report is the BENCH_invoke.json schema. BenchTime records the
// -benchtime the run used: cycles/op is only comparable between runs
// at the same iteration count, because fixed per-run setup cost
// amortizes over N, so the gate refuses to compare across a mismatch.
type Report struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	BenchTime  string             `json:"benchtime,omitempty"`
	Benchmarks map[string]*Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "benchmark output to parse ('-' for stdin)")
	out := flag.String("out", "", "write the JSON report here (empty: stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty: no gate)")
	threshold := flag.Float64("threshold", 0.20, "maximum allowed cycles/op regression, as a fraction")
	benchtime := flag.String("benchtime", "", "the -benchtime the run used (e.g. 2000x), recorded in the report and checked against the baseline")
	minParallel := flag.Float64("minparallel", 0, "minimum serialized-to-parallel ns/op ratio (P0/P1); 0 disables the ratio gate")
	pSerial := flag.String("pserial", "BenchmarkP0_SerializedProxyCall", "serialized benchmark for the ratio gate")
	pParallel := flag.String("pparallel", "BenchmarkP1_ParallelProxyCall", "parallel benchmark for the ratio gate")
	minScaling := flag.Float64("minscaling", 0, "minimum single-CPU-to-scaled ns/op ratio on the topology-scaling invoke pair; 0 disables the scaling gate")
	sBase := flag.String("sbase", "BenchmarkP9_TopologyScaling/cpus=1/work=invoke", "single-CPU benchmark for the scaling gate")
	sScaled := flag.String("sscaled", "BenchmarkP9_TopologyScaling/cpus=16/work=invoke", "scaled-up benchmark for the scaling gate")
	minGrouped := flag.Float64("mingrouped", 0, "minimum in-order-to-grouped cycles/op ratio on the mixed-target batch pair; 0 disables the grouped-dispatch gate")
	gInOrder := flag.String("ginorder", "BenchmarkP8_MixedTargetBatch/targets=2/size=16/mode=inorder", "in-order benchmark for the grouped-dispatch gate")
	gGrouped := flag.String("ggrouped", "BenchmarkP8_MixedTargetBatch/targets=2/size=16/mode=grouped", "grouped benchmark for the grouped-dispatch gate")
	allocGate := flag.String("allocgate", "", "comma-separated benchmarks whose allocs/op must not exceed the baseline (empty: no allocs gate)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r)
	if err != nil {
		fatal(err)
	}
	report.BenchTime = *benchtime
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	js, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
	} else if err := os.WriteFile(*out, js, 0o644); err != nil {
		fatal(err)
	}

	// The claimed -benchtime is only an assertion; when it is a fixed
	// iteration count ("Nx"), hold it against the counts the run
	// actually reports, so the bench command and the benchgate flag
	// cannot silently drift apart. Checked after the report is written:
	// CI uploads the report precisely when the run fails.
	if n, ok := strings.CutSuffix(*benchtime, "x"); ok {
		if want, err := strconv.ParseUint(n, 10, 64); err == nil {
			for _, name := range sortedNames(report.Benchmarks) {
				if it := report.Benchmarks[name].iterations; it != 0 && it != want {
					fmt.Fprintf(os.Stderr, "FAIL: %s ran %d iterations but -benchtime claims %s; the bench command and the benchgate flag are out of sync\n",
						name, it, *benchtime)
					os.Exit(1)
				}
			}
		}
	}

	// The serialized-to-parallel ratio gate. Absolute ns/op on shared
	// runners is noise, but the RATIO of the same workload run behind
	// one mutex versus concurrently is a property of the code: if the
	// invocation plane reacquires a global serialization point (MMU
	// mutex, single runqueue, per-interface slot), the parallel run
	// degrades to the serialized one and the ratio collapses toward —
	// or below — 1. Gated against the current run alone, no baseline
	// needed.
	if *minParallel > 0 {
		p0, p1 := report.Benchmarks[*pSerial], report.Benchmarks[*pParallel]
		switch {
		case report.GoMaxProcs < 2:
			// With one processor there is no parallelism for the ratio
			// to measure: serialized and concurrent runs do the same
			// work, and the ratio is pure noise around 1. Skip, loudly.
			fmt.Fprintln(os.Stderr, "note: ratio gate skipped at GOMAXPROCS=1 (no parallelism to measure)")
		case p0 == nil || p1 == nil:
			fmt.Fprintf(os.Stderr, "FAIL: ratio gate needs both %s and %s in the run\n", *pSerial, *pParallel)
			os.Exit(1)
		case p0.NsPerOp <= 0 || p1.NsPerOp <= 0:
			fmt.Fprintf(os.Stderr, "FAIL: ratio gate needs ns/op for %s and %s\n", *pSerial, *pParallel)
			os.Exit(1)
		default:
			ratio := p0.NsPerOp / p1.NsPerOp
			if ratio < *minParallel {
				fmt.Fprintf(os.Stderr, "FAIL: serialized/parallel ratio %.2f < %.2f required (%s %.1f ns/op vs %s %.1f ns/op) — the parallel plane has re-serialized\n",
					ratio, *minParallel, *pSerial, p0.NsPerOp, *pParallel, p1.NsPerOp)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchgate: serialized/parallel ratio %.2f (>= %.2f required)\n", ratio, *minParallel)
		}
	}

	// The topology-scaling ratio gate. Same shape as the P0/P1 ratio
	// gate: wall-clock scaling of the simulated machine is bounded by
	// the host's parallelism, so absolute ns/op is noise but the RATIO
	// of the same per-worker workload on a 1-CPU versus a 16-CPU
	// machine is structural — if thread dispatch, per-CPU TLBs or the
	// node-aware run queues reacquire a global serialization point, the
	// 16-CPU run degrades to the 1-CPU run and the ratio collapses
	// toward 1. Gated against the current run alone, no baseline
	// needed; skipped below 4 processors, where the floor cannot be
	// reached even in principle.
	if *minScaling > 0 {
		s1, s16 := report.Benchmarks[*sBase], report.Benchmarks[*sScaled]
		switch {
		case report.GoMaxProcs < 4:
			// The ratio is capped by host parallelism: at GOMAXPROCS<4 a
			// 2x floor is unreachable no matter how well the simulated
			// machine scales. Skip, loudly.
			fmt.Fprintf(os.Stderr, "note: scaling gate skipped at GOMAXPROCS=%d (needs >=4 processors to measure scaling)\n", report.GoMaxProcs)
		case s1 == nil || s16 == nil:
			fmt.Fprintf(os.Stderr, "FAIL: scaling gate needs both %s and %s in the run\n", *sBase, *sScaled)
			os.Exit(1)
		case s1.NsPerOp <= 0 || s16.NsPerOp <= 0:
			fmt.Fprintf(os.Stderr, "FAIL: scaling gate needs ns/op for %s and %s\n", *sBase, *sScaled)
			os.Exit(1)
		default:
			ratio := s1.NsPerOp / s16.NsPerOp
			if ratio < *minScaling {
				fmt.Fprintf(os.Stderr, "FAIL: cpus=1/cpus=16 scaling ratio %.2f < %.2f required (%s %.1f ns/op vs %s %.1f ns/op) — the topology no longer scales\n",
					ratio, *minScaling, *sBase, s1.NsPerOp, *sScaled, s16.NsPerOp)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchgate: cpus=1/cpus=16 scaling ratio %.2f (>= %.2f required)\n", ratio, *minScaling)
		}
	}

	// The grouped-dispatch ratio gate. Unlike the P0/P1 ratio this one
	// compares cycles/op — the deterministic virtual-cycle metric — so
	// it holds on any runner shape, GOMAXPROCS=1 included: an
	// alternating mixed-target batch pays one crossing per entry in
	// order-preserving mode, and grouped dispatch must keep paying only
	// one per distinct target. If the ratio collapses, grouped mode has
	// stopped partitioning (or in-order dispatch got charged less than
	// a crossing per entry — either way the vectoring contract broke).
	// Gated against the current run alone, no baseline needed.
	if *minGrouped > 0 {
		gi, gg := report.Benchmarks[*gInOrder], report.Benchmarks[*gGrouped]
		switch {
		case gi == nil || gg == nil:
			fmt.Fprintf(os.Stderr, "FAIL: grouped-dispatch gate needs both %s and %s in the run\n", *gInOrder, *gGrouped)
			os.Exit(1)
		case gi.CyclesPerOp <= 0 || gg.CyclesPerOp <= 0:
			fmt.Fprintf(os.Stderr, "FAIL: grouped-dispatch gate needs cycles/op for %s and %s\n", *gInOrder, *gGrouped)
			os.Exit(1)
		default:
			ratio := gi.CyclesPerOp / gg.CyclesPerOp
			if ratio < *minGrouped {
				fmt.Fprintf(os.Stderr, "FAIL: in-order/grouped ratio %.2f < %.2f required (%s %.1f cycles/op vs %s %.1f cycles/op) — grouped dispatch no longer amortizes mixed-target crossings\n",
					ratio, *minGrouped, *gInOrder, gi.CyclesPerOp, *gGrouped, gg.CyclesPerOp)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchgate: in-order/grouped ratio %.2f (>= %.2f required)\n", ratio, *minGrouped)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	failures := gate(base, report, *threshold)
	if *allocGate != "" {
		failures = append(failures, gateAllocs(base, report, strings.Split(*allocGate, ","))...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d benchmarks, gate passed (threshold %.0f%%)\n",
		len(report.Benchmarks), *threshold*100)
}

// gateAllocs holds the named benchmarks' allocs/op at or below the
// baseline — exactly, no threshold: allocation counts are
// deterministic per op, so any increase is a real regression of the
// zero-allocation invariant (a baseline of 0 means the benchmark must
// stay allocation-free). The named benchmarks must exist in both the
// baseline and the run: losing one silently would ungate it.
func gateAllocs(base, cur *Report, names []string) []string {
	var failures []string
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		switch {
		case b == nil:
			failures = append(failures, fmt.Sprintf("%s: allocs-gated but missing from the baseline", name))
		case c == nil:
			failures = append(failures, fmt.Sprintf("%s: allocs-gated but missing from this run", name))
		case !c.hasAllocs:
			failures = append(failures, fmt.Sprintf("%s: allocs-gated but this run reported no allocs/op (b.ReportAllocs dropped?)", name))
		case c.AllocsPerOp > b.AllocsPerOp:
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op, baseline %.1f — the allocation-free invariant regressed",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return failures
}

// parse reads `go test -bench` output. A benchmark line looks like:
//
//	BenchmarkT2_CrossDomain-8   200000   813.7 ns/op   714.0 cycles/op
//
// The -N GOMAXPROCS suffix is stripped so names stay stable across
// runner shapes — but N itself is kept as the report's GoMaxProcs: it
// is the parallelism of the RUN, which is what the ratio gate must
// judge, not the parallelism of the benchgate process (the two can
// differ when the bench step sets GOMAXPROCS or the output is parsed
// elsewhere). Suffix-less output means the run had GOMAXPROCS=1.
func parse(r io.Reader) (*Report, error) {
	report := &Report{GoMaxProcs: 1, Benchmarks: map[string]*Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				if n > report.GoMaxProcs {
					report.GoMaxProcs = n
				}
			}
		}
		res := report.Benchmarks[name]
		if res == nil {
			res = &Result{}
			report.Benchmarks[name] = res
		}
		if it, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
			res.iterations = it
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "cycles/op":
				res.CyclesPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.hasAllocs = true
			}
		}
	}
	return report, sc.Err()
}

func load(path string) (*Report, error) {
	js, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(js, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// gate compares every baseline benchmark that carries a cycles/op
// metric against the current run. Missing benchmarks fail: deleting a
// gated hot path is a decision, recorded by editing the baseline.
// Benchmarks in the run but absent from the baseline are warned about,
// so a newly added hot path is never silently ungated.
func gate(base, cur *Report, threshold float64) []string {
	switch {
	case base.BenchTime != "" && cur.BenchTime != "" && base.BenchTime != cur.BenchTime:
		// cycles/op from different iteration counts are incomparable
		// (per-run setup amortizes over N): refuse outright rather
		// than report phantom per-benchmark regressions on top.
		return []string{fmt.Sprintf(
			"benchtime mismatch: baseline captured at %q, this run at %q — cycles/op not comparable",
			base.BenchTime, cur.BenchTime)}
	case base.BenchTime == "" || cur.BenchTime == "":
		fmt.Fprintln(os.Stderr, "note: benchtime not recorded on both sides; cannot verify baseline and run used the same iteration count")
	}
	var failures []string
	for _, name := range sortedNames(cur.Benchmarks) {
		if cur.Benchmarks[name].CyclesPerOp != 0 && base.Benchmarks[name] == nil {
			fmt.Fprintf(os.Stderr, "warning: %s reports cycles/op but has no baseline entry — not gated; add it to the baseline\n", name)
		}
	}
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		if b.CyclesPerOp == 0 {
			continue // host-time-only benchmark (P-series, Invoke pair): not gated
		}
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in this run", name))
			continue
		}
		if c.CyclesPerOp == 0 {
			failures = append(failures, fmt.Sprintf("%s: baseline has %.1f cycles/op but this run reported none (metric lost?)",
				name, b.CyclesPerOp))
			continue
		}
		limit := b.CyclesPerOp * (1 + threshold)
		switch {
		case c.CyclesPerOp > limit:
			failures = append(failures, fmt.Sprintf("%s: %.1f cycles/op, baseline %.1f (+%.1f%% > +%.0f%% allowed)",
				name, c.CyclesPerOp, b.CyclesPerOp,
				100*(c.CyclesPerOp-b.CyclesPerOp)/b.CyclesPerOp, threshold*100))
		case c.CyclesPerOp < b.CyclesPerOp*(1-threshold):
			fmt.Fprintf(os.Stderr, "note: %s improved to %.1f cycles/op (baseline %.1f); consider refreshing the baseline\n",
				name, c.CyclesPerOp, b.CyclesPerOp)
		}
	}
	return failures
}

// sortedNames returns a map's benchmark names in stable order.
func sortedNames(m map[string]*Result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
