package ring

import (
	"encoding/binary"
	"errors"
	"fmt"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/probe"
	"paramecium/internal/shm"
)

// Control-word offsets in page 0; see the package comment for the
// full wire format.
const (
	offMagic    = 0
	offSlots    = 8
	offSlotSize = 16
	offTail     = 24
	offHead     = 32
	offDoorbell = 40

	// descBase is where the per-slot descriptor array starts. Each
	// descriptor is one word: the record's byte length.
	descBase = 64

	// magic identifies a formatted ring ("pmring01").
	magic = 0x706d72696e673031
)

// Protocol errors.
var (
	// ErrFull reports a push into a ring whose consumer is slots
	// records behind; retry after the consumer releases a slot.
	ErrFull = errors.New("ring: full")
	// ErrEmpty reports a pop from a ring with no published records.
	ErrEmpty = errors.New("ring: empty")
	// ErrHangup reports that the peer is gone: the consumer's grant
	// was revoked — by Hangup, by domain teardown, or by segment
	// destruction. Distinct from shm.ErrNoGrant (a capability that
	// never existed); unconsumed records are lost.
	ErrHangup = errors.New("ring: hangup")
	// ErrRecordSize reports a record larger than the ring's slots.
	ErrRecordSize = errors.New("ring: record exceeds slot size")
	// ErrGeometry reports an unusable slot count or size at New.
	ErrGeometry = errors.New("ring: bad geometry")
)

// Ring is one single-producer/single-consumer ring over a shared
// segment. The segment is owned by the producer's protection domain
// and granted read-write to the consumer's; New formats it and
// attaches the consumer side. Producer and Consumer are each safe for
// one goroutine — that is the SPSC contract — while the two sides may
// run concurrently with each other and with revocation.
type Ring struct {
	meter *clock.Meter
	seg   *shm.Segment
	grant *shm.Grant
	att   *shm.Attachment

	slots       int
	slotBytes   int
	stride      int // slot payload footprint, slotBytes rounded to a word
	payloadBase int // segment offset of slot 0's payload, page-aligned

	// producerCtx/consumerCtx cache the endpoint domains for charge
	// attribution, so the hot push/pop paths never chase the grant.
	producerCtx uint32
	consumerCtx uint32

	prod Producer
	cons Consumer
}

// New creates and formats a ring of slots records of up to slotBytes
// payload each, owned by the producer context and granted read-write
// to the consumer context. Teardown of either domain through the
// registry's CondemnDomain sweep hangs the ring up: the sweep
// destroys segments the producer owns and revokes grants addressed to
// the consumer.
func New(meter *clock.Meter, reg *shm.Registry, producer, consumer mmu.ContextID, slots, slotBytes int) (*Ring, error) {
	if slots < 1 || slotBytes < 0 {
		return nil, fmt.Errorf("%w: %d slots of %d bytes", ErrGeometry, slots, slotBytes)
	}
	stride := (slotBytes + 7) &^ 7
	payloadBase := pageCeil(descBase + slots*8)
	pages := (payloadBase + pageCeil(slots*stride)) / mmu.PageSize
	seg, err := reg.NewSegment(producer, pages)
	if err != nil {
		return nil, err
	}
	grant, err := seg.Grant(consumer, shm.RW)
	if err != nil {
		_ = seg.Destroy()
		return nil, err
	}
	att, err := reg.Attach(grant.Ref())
	if err != nil {
		_ = seg.Destroy()
		return nil, err
	}
	r := &Ring{
		meter:       meter,
		seg:         seg,
		grant:       grant,
		att:         att,
		slots:       slots,
		slotBytes:   slotBytes,
		stride:      stride,
		payloadBase: payloadBase,
		producerCtx: uint32(producer),
		consumerCtx: uint32(consumer),
	}
	var w [8]byte
	for _, init := range []struct {
		off int
		val uint64
	}{{offMagic, magic}, {offSlots, uint64(slots)}, {offSlotSize, uint64(slotBytes)}} {
		binary.LittleEndian.PutUint64(w[:], init.val)
		if err := seg.Store(init.off, w[:]); err != nil {
			_ = seg.Destroy()
			return nil, err
		}
	}
	r.prod.r = r
	r.cons.r = r
	return r, nil
}

func pageCeil(n int) int {
	return (n + mmu.PageSize - 1) &^ (mmu.PageSize - 1)
}

// Producer returns the producer endpoint. One goroutine at a time.
func (r *Ring) Producer() *Producer { return &r.prod }

// Consumer returns the consumer endpoint. One goroutine at a time.
func (r *Ring) Consumer() *Consumer { return &r.cons }

// Slots reports the ring's record capacity.
func (r *Ring) Slots() int { return r.slots }

// SlotBytes reports the maximum record payload size.
func (r *Ring) SlotBytes() int { return r.slotBytes }

// Pages reports the backing segment's size in pages.
func (r *Ring) Pages() int { return r.seg.Pages() }

// GrantRef returns the consumer-side grant capability, e.g. to hand
// the consumer domain an independent attachment path.
func (r *Ring) GrantRef() shm.GrantRef { return r.grant.Ref() }

// Segment exposes the backing segment for owner-side (producer
// domain) in-place payload access around ProduceOffset/PushInPlace.
func (r *Ring) Segment() *shm.Segment { return r.seg }

// Close destroys the backing segment. Both endpoints fail afterwards;
// the consumer side observes ErrHangup. Domain teardown does this
// implicitly for rings the dying domain produces.
func (r *Ring) Close() error { return r.seg.Destroy() }

func (r *Ring) descOff(count uint64) int {
	return descBase + int(count%uint64(r.slots))*8
}

func (r *Ring) payloadOff(count uint64) int {
	return r.payloadBase + int(count%uint64(r.slots))*r.stride
}

// Producer is the publishing endpoint: it owns the tail and doorbell
// words and writes slots through the owning domain's mapping.
type Producer struct {
	r         *Ring
	tail      uint64 // local copy of the tail word (sole writer)
	headCache uint64 // last observed head; refreshed on apparent full
	pending   int    // records published since the last Notify
	w         [8]byte
	db        obj.MethodHandle
	hasDB     bool
	dbOut     [1]any
}

// SetDoorbell installs the method Notify invokes after latching the
// doorbell word — typically a zero-argument method resolved through a
// cross-domain proxy into the consumer's domain, so one vectored
// crossing wakes the consumer for a whole burst. Without one, Notify
// only latches the word and the consumer polls.
func (p *Producer) SetDoorbell(h obj.MethodHandle) {
	p.db = h
	p.hasDB = true
}

// Pending reports how many published records the next Notify covers.
func (p *Producer) Pending() int { return p.pending }

// reserve ensures the next slot is free, refreshing the head cache
// from shared memory when the ring looks full. A revoked consumer
// grant surfaces as ErrHangup rather than letting the producer fill
// slots nobody will ever drain.
//
//paramecium:hotpath
func (p *Producer) reserve() error {
	if p.r.grant.Revoked() {
		return ErrHangup
	}
	if p.tail-p.headCache == uint64(p.r.slots) {
		if err := p.r.seg.Load(offHead, p.w[:]); err != nil {
			return err
		}
		p.headCache = binary.LittleEndian.Uint64(p.w[:])
		if p.tail-p.headCache == uint64(p.r.slots) {
			return ErrFull
		}
	}
	return nil
}

// publish writes the record descriptor, then the tail word — in that
// order, so a consumer observing the new tail always observes the
// descriptor — and charges the push.
//
//paramecium:hotpath
func (p *Producer) publish(n uint64) error {
	binary.LittleEndian.PutUint64(p.w[:], n)
	if err := p.r.seg.Store(p.r.descOff(p.tail), p.w[:]); err != nil {
		return err
	}
	p.tail++
	binary.LittleEndian.PutUint64(p.w[:], p.tail)
	if err := p.r.seg.Store(offTail, p.w[:]); err != nil {
		return err
	}
	p.pending++
	p.r.meter.ChargeFor(p.r.producerCtx, clock.OpRingPush)
	return nil
}

// Push copies rec into the next slot and publishes it. The copy is
// charged to the producer as ordinary memory traffic; for payloads
// already produced in shared memory, use ProduceOffset/PushInPlace
// and skip the copy entirely.
//
//paramecium:hotpath
func (p *Producer) Push(rec []byte) error {
	if len(rec) > p.r.slotBytes {
		return ErrRecordSize
	}
	if err := p.reserve(); err != nil {
		return err
	}
	if len(rec) > 0 {
		if err := p.r.seg.Store(p.r.payloadOff(p.tail), rec); err != nil {
			return err
		}
	}
	return p.publish(uint64(len(rec)))
}

// ProduceOffset reserves the next slot and returns the segment offset
// of its payload, for producing record bytes in place through the
// owner mapping before PushInPlace publishes them.
//
//paramecium:hotpath
func (p *Producer) ProduceOffset() (int, error) {
	if err := p.reserve(); err != nil {
		return 0, err
	}
	return p.r.payloadOff(p.tail), nil
}

// PushInPlace publishes a record of n bytes already written in place
// in the next slot: descriptor and tail words only — the payload
// never moves.
//
//paramecium:hotpath
func (p *Producer) PushInPlace(n int) error {
	if n < 0 || n > p.r.slotBytes {
		return ErrRecordSize
	}
	if err := p.reserve(); err != nil {
		return err
	}
	return p.publish(uint64(n))
}

// Notify latches tail into the doorbell word, charges one OpDoorbell
// for the burst, and invokes the doorbell handle if one is set. A
// no-op when nothing was pushed since the last Notify. Rings carry no
// CPU identity, so the doorbell flight-recorder event is stamped on
// the boot CPU; the paying domain is the producer's context.
//
//paramecium:hotpath
func (p *Producer) Notify() error {
	if p.pending == 0 {
		return nil
	}
	binary.LittleEndian.PutUint64(p.w[:], p.tail)
	if err := p.r.seg.Store(offDoorbell, p.w[:]); err != nil {
		return err
	}
	burst := p.pending
	p.pending = 0
	p.r.meter.ChargeFor(p.r.producerCtx, clock.OpDoorbell)
	if probe.Enabled() {
		p.r.meter.Emit(int(mmu.BootCPU), probe.KindDoorbell, p.r.producerCtx, uint64(burst), uint64(p.r.seg.ID()))
	}
	if p.hasDB {
		_, err := p.db.CallInto(p.dbOut[:0])
		return err
	}
	return nil
}

// Hangup revokes the consumer's grant: the shm tombstone this leaves
// behind is the ring's end-of-stream signal. The consumer's next
// access fails with ErrHangup. The hangup flight-recorder event is
// stamped on the boot CPU — grant revocation is a control-plane
// operation with no CPU identity of its own.
func (p *Producer) Hangup() error {
	if probe.Enabled() {
		p.r.meter.Emit(int(mmu.BootCPU), probe.KindHangup, p.r.producerCtx, uint64(p.r.seg.ID()), 0)
	}
	return p.r.grant.Revoke()
}

// Consumer is the draining endpoint: it owns the head word and reads
// slots through the grantee attachment, so a revoked grant fails
// every access — that is the hangup path.
type Consumer struct {
	r         *Ring
	head      uint64 // local copy of the head word (sole writer)
	tailCache uint64 // last observed tail; refreshed on apparent empty
	w         [8]byte
}

// hangupErr translates segment-plane loss of access into the ring's
// end-of-stream error, recording a consumer-side hangup event stamped
// on the boot CPU (the ring has no CPU identity to thread through).
//
//paramecium:hotpath
func (c *Consumer) hangupErr(err error) error {
	if errors.Is(err, shm.ErrRevoked) || errors.Is(err, shm.ErrDestroyed) {
		if probe.Enabled() {
			c.r.meter.Emit(int(mmu.BootCPU), probe.KindHangup, c.r.consumerCtx, uint64(c.r.seg.ID()), 1)
		}
		return ErrHangup
	}
	return err
}

// available ensures at least one record is published, refreshing the
// tail cache from shared memory when the ring looks empty.
//
//paramecium:hotpath
func (c *Consumer) available() error {
	if c.head == c.tailCache {
		if err := c.r.att.Load(offTail, c.w[:]); err != nil {
			return c.hangupErr(err)
		}
		c.tailCache = binary.LittleEndian.Uint64(c.w[:])
		if c.head == c.tailCache {
			return ErrEmpty
		}
	}
	return nil
}

// Len reports how many published records await consumption, reloading
// the tail word.
func (c *Consumer) Len() (int, error) {
	if err := c.r.att.Load(offTail, c.w[:]); err != nil {
		return 0, c.hangupErr(err)
	}
	c.tailCache = binary.LittleEndian.Uint64(c.w[:])
	return int(c.tailCache - c.head), nil
}

// Peek returns the payload offset and length of the head record
// without consuming it, reading only its one-word descriptor. The
// caller reads whatever payload bytes it wants in place through
// Attachment (or none), then calls Release.
//
//paramecium:hotpath
func (c *Consumer) Peek() (off, n int, err error) {
	if err := c.available(); err != nil {
		return 0, 0, err
	}
	if err := c.r.att.Load(c.r.descOff(c.head), c.w[:]); err != nil {
		return 0, 0, c.hangupErr(err)
	}
	return c.r.payloadOff(c.head), int(binary.LittleEndian.Uint64(c.w[:])), nil
}

// Release consumes the head record, publishing the new head so the
// producer may reuse the slot, and charges the pop.
//
//paramecium:hotpath
func (c *Consumer) Release() error {
	if err := c.available(); err != nil {
		return err
	}
	c.head++
	binary.LittleEndian.PutUint64(c.w[:], c.head)
	if err := c.r.att.Store(offHead, c.w[:]); err != nil {
		c.head--
		return c.hangupErr(err)
	}
	c.r.meter.ChargeFor(c.r.consumerCtx, clock.OpRingPop)
	return nil
}

// Pop copies the head record's payload into buf and consumes it,
// returning the record's full length (which may exceed what fit in
// buf). The copy is charged to the consumer as ordinary memory
// traffic; Peek/Release skips it for in-place consumption.
//
//paramecium:hotpath
func (c *Consumer) Pop(buf []byte) (int, error) {
	off, n, err := c.Peek()
	if err != nil {
		return 0, err
	}
	m := n
	if m > len(buf) {
		m = len(buf)
	}
	if m > 0 {
		if err := c.r.att.Load(off, buf[:m]); err != nil {
			return 0, c.hangupErr(err)
		}
	}
	if err := c.Release(); err != nil {
		return 0, err
	}
	return n, nil
}

// Attachment exposes the consumer-side mapping for in-place payload
// reads between Peek and Release.
func (c *Consumer) Attachment() *shm.Attachment { return c.r.att }
