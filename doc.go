// Package paramecium is a reproduction, in Go, of "Paramecium: an
// extensible object-based kernel" (van Doorn, Homburg, Tanenbaum;
// HotOS-V, 1995).
//
// The implementation lives under internal/: the simulated machine
// (hw, mmu, clock), the object architecture (obj), the name space
// (names), the four nucleus services (event, mem, names, cert wired
// together by core), the thread package with proto-thread pop-up
// threads (threads), cross-domain proxies (proxy), the PVM bytecode
// with its SFI rewriter (sandbox), drivers and a protocol stack
// (drivers, netstack), a virtual-memory extension (vmm), the
// component repository (repoz), the monolithic-kernel baseline
// (baseline), monitoring tools (trace) and the experiment harness
// (bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for results.
package paramecium
