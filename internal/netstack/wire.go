// Package netstack is the shared protocol stack component of the
// reproduction: a small Ethernet/IP/UDP-lite stack, written as an
// ordinary Paramecium object, with a packet-filter attach point.
//
// The stack exists to exercise the paper's motivating example:
// "inserting application components for fast protocol processing into
// a shared network device driver". Filters can be trusted Go code,
// certified PVM programs running without checks, or SFI-sandboxed PVM
// programs — the three protection regimes experiment T5/F1 compares.
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 6-byte hardware address.
type MAC [6]byte

// IP is a 4-byte network address.
type IP [4]byte

// String renders the MAC in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// String renders the IP in dotted-quad form.
func (p IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", p[0], p[1], p[2], p[3])
}

// Wire format sizes.
const (
	EthHeaderLen = 14 // dst(6) src(6) ethertype(2)
	IPHeaderLen  = 12 // proto(1) ttl(1) totalLen(2) src(4) dst(4)
	UDPHeaderLen = 8  // srcPort(2) dstPort(2) len(2) cksum(2)
)

// EtherTypeIP is the ethertype of the IP-lite protocol.
const EtherTypeIP = 0x0800

// ProtoUDP is the IP protocol number of UDP.
const ProtoUDP = 17

// DefaultTTL is the initial time-to-live of transmitted packets.
const DefaultTTL = 64

// ErrMalformed is returned for frames that do not parse.
var ErrMalformed = errors.New("netstack: malformed packet")

// Frame is a parsed Ethernet frame.
type Frame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte // aliases the input
}

// ParseFrame decodes the Ethernet header.
func ParseFrame(b []byte) (Frame, error) {
	if len(b) < EthHeaderLen {
		return Frame{}, fmt.Errorf("%w: frame too short (%d bytes)", ErrMalformed, len(b))
	}
	var f Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = binary.BigEndian.Uint16(b[12:14])
	f.Payload = b[14:]
	return f, nil
}

// BuildFrame encodes an Ethernet frame.
func BuildFrame(dst, src MAC, etherType uint16, payload []byte) []byte {
	b := make([]byte, EthHeaderLen+len(payload))
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:14], etherType)
	copy(b[14:], payload)
	return b
}

// Packet is a parsed IP-lite packet.
type Packet struct {
	Proto    uint8
	TTL      uint8
	Src, Dst IP
	Payload  []byte
}

// ParseIP decodes the IP-lite header.
func ParseIP(b []byte) (Packet, error) {
	if len(b) < IPHeaderLen {
		return Packet{}, fmt.Errorf("%w: IP header too short", ErrMalformed)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < IPHeaderLen || total > len(b) {
		return Packet{}, fmt.Errorf("%w: IP total length %d (have %d)", ErrMalformed, total, len(b))
	}
	var p Packet
	p.Proto = b[0]
	p.TTL = b[1]
	copy(p.Src[:], b[4:8])
	copy(p.Dst[:], b[8:12])
	p.Payload = b[IPHeaderLen:total]
	return p, nil
}

// BuildIP encodes an IP-lite packet.
func BuildIP(src, dst IP, proto uint8, payload []byte) []byte {
	b := make([]byte, IPHeaderLen+len(payload))
	b[0] = proto
	b[1] = DefaultTTL
	binary.BigEndian.PutUint16(b[2:4], uint16(IPHeaderLen+len(payload)))
	copy(b[4:8], src[:])
	copy(b[8:12], dst[:])
	copy(b[12:], payload)
	return b
}

// Datagram is a parsed UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// ParseUDP decodes a UDP header and verifies the checksum.
func ParseUDP(b []byte) (Datagram, error) {
	if len(b) < UDPHeaderLen {
		return Datagram{}, fmt.Errorf("%w: UDP header too short", ErrMalformed)
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < UDPHeaderLen || length > len(b) {
		return Datagram{}, fmt.Errorf("%w: UDP length %d (have %d)", ErrMalformed, length, len(b))
	}
	var d Datagram
	d.SrcPort = binary.BigEndian.Uint16(b[0:2])
	d.DstPort = binary.BigEndian.Uint16(b[2:4])
	d.Payload = b[UDPHeaderLen:length]
	want := binary.BigEndian.Uint16(b[6:8])
	if got := Checksum(d.Payload); got != want {
		return Datagram{}, fmt.Errorf("%w: UDP checksum %#x, want %#x", ErrMalformed, got, want)
	}
	return d, nil
}

// BuildUDP encodes a UDP datagram with checksum.
func BuildUDP(srcPort, dstPort uint16, payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], srcPort)
	binary.BigEndian.PutUint16(b[2:4], dstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(UDPHeaderLen+len(payload)))
	binary.BigEndian.PutUint16(b[6:8], Checksum(payload))
	copy(b[8:], payload)
	return b
}

// Checksum is a 16-bit one's-complement sum, the classic Internet
// checksum restricted to the payload.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// BuildUDPFrame assembles a full frame down the stack: Ethernet
// carrying IP-lite carrying UDP.
func BuildUDPFrame(dstMAC, srcMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16, payload []byte) []byte {
	udp := BuildUDP(srcPort, dstPort, payload)
	ip := BuildIP(srcIP, dstIP, ProtoUDP, udp)
	return BuildFrame(dstMAC, srcMAC, EtherTypeIP, ip)
}
