package hw

import (
	"fmt"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/probe"
)

// Topology is the machine's NUMA shape: Nodes memory nodes with
// CPUsPerNode CPUs each, laid out contiguously — CPU k lives on node
// k / CPUsPerNode. Frames carry a home node (mmu.PhysMem.FrameNode,
// tagged by the memory service's placement policies), and every access
// whose initiating CPU's node differs from the touched frame's home
// charges clock.OpRemoteFrameAccess scaled by the node distance.
//
// A nil Topology (the default) is a single node: no access is ever
// remote and nothing new is charged, which is what keeps every
// pre-topology baseline row byte-identical.
type Topology struct {
	Nodes       int
	CPUsPerNode int
	// Distance[a][b] is the OpRemoteFrameAccess multiplier charged per
	// page-sized chunk when a CPU on node a touches a frame homed on
	// node b. The diagonal must be zero (local access carries no remote
	// charge). Nil means the uniform matrix: 0 on the diagonal, 1
	// everywhere else.
	Distance [][]uint32
}

// NewTopology builds a topology of nodes × cpusPerNode CPUs with the
// uniform distance matrix (every remote hop costs one
// OpRemoteFrameAccess unit per chunk).
func NewTopology(nodes, cpusPerNode int) *Topology {
	return &Topology{Nodes: nodes, CPUsPerNode: cpusPerNode}
}

// NumCPUs reports the topology's total CPU count.
func (t *Topology) NumCPUs() int { return t.Nodes * t.CPUsPerNode }

// NodeOf reports the node a CPU lives on. The contiguous layout is
// part of the contract: schedulers use it to group same-node CPUs
// without asking the machine.
func (t *Topology) NodeOf(cpu mmu.CPUID) int32 {
	return int32(int(cpu) / t.CPUsPerNode)
}

// validate checks shape and fills in the uniform distance matrix when
// none was provided. It returns a copy; the caller's Topology is never
// mutated.
func (t *Topology) validate() (*Topology, error) {
	if t.Nodes <= 0 || t.CPUsPerNode <= 0 {
		return nil, fmt.Errorf("hw: topology needs positive nodes and cpus per node, got %d×%d", t.Nodes, t.CPUsPerNode)
	}
	out := &Topology{Nodes: t.Nodes, CPUsPerNode: t.CPUsPerNode}
	if t.Distance == nil {
		out.Distance = make([][]uint32, t.Nodes)
		for a := range out.Distance {
			out.Distance[a] = make([]uint32, t.Nodes)
			for b := range out.Distance[a] {
				if a != b {
					out.Distance[a][b] = 1
				}
			}
		}
		return out, nil
	}
	if len(t.Distance) != t.Nodes {
		return nil, fmt.Errorf("hw: distance matrix has %d rows for %d nodes", len(t.Distance), t.Nodes)
	}
	out.Distance = make([][]uint32, t.Nodes)
	for a, row := range t.Distance {
		if len(row) != t.Nodes {
			return nil, fmt.Errorf("hw: distance row %d has %d entries for %d nodes", a, len(row), t.Nodes)
		}
		if row[a] != 0 {
			return nil, fmt.Errorf("hw: distance diagonal [%d][%d] must be zero, got %d", a, a, row[a])
		}
		out.Distance[a] = append([]uint32(nil), row...)
	}
	return out, nil
}

// Topology reports the machine's NUMA shape, nil for the default
// single-node machine.
func (m *Machine) Topology() *Topology { return m.topo }

// NodeOfCPU reports the NUMA node a CPU lives on (always 0 on a
// single-node machine).
func (m *Machine) NodeOfCPU(cpu mmu.CPUID) int32 {
	if m.topo == nil {
		return 0
	}
	return m.topo.NodeOf(cpu)
}

// chargeRemote charges the interconnect cost of one page-chunk access:
// OpRemoteFrameAccess scaled by the node distance between the
// initiating CPU's node and the touched frame's home. Untagged frames
// (FrameNode == NoNode) and single-node machines charge nothing.
//
//paramecium:hotpath
func (m *Machine) chargeRemote(cpu mmu.CPUID, ctx mmu.ContextID, pa mmu.PAddr) {
	home := m.Phys.FrameNode(pa.Frame())
	if home < 0 {
		return
	}
	if d := m.topo.Distance[m.topo.NodeOf(cpu)][home]; d != 0 {
		m.Meter.ChargeNFor(uint32(ctx), clock.OpRemoteFrameAccess, uint64(d))
		if probe.Enabled() {
			m.Meter.Emit(int(cpu), probe.KindRemoteFrame, uint32(ctx), uint64(pa.Frame()), uint64(d))
		}
	}
}
