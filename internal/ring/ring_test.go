package ring

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/obj"
	"paramecium/internal/shm"
)

func newTestRing(t *testing.T, slots, slotBytes int) (*Ring, *shm.Registry, *mem.Service, *hw.Machine) {
	t.Helper()
	machine := hw.New(hw.Config{PhysFrames: 512, CPUs: 1})
	svc := mem.New(machine)
	reg := shm.NewRegistry(svc)
	prod := svc.NewDomain()
	cons := svc.NewDomain()
	r, err := New(machine.Meter, reg, prod, cons, slots, slotBytes)
	if err != nil {
		t.Fatal(err)
	}
	return r, reg, svc, machine
}

func TestRingRoundTrip(t *testing.T) {
	r, _, _, machine := newTestRing(t, 4, 64)
	p, c := r.Producer(), r.Consumer()

	// Push more records than slots to exercise wrap-around.
	buf := make([]byte, 64)
	for i := 0; i < 11; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		if err := p.Push(rec); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		n, err := c.Pop(buf)
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if n != len(rec) || !bytes.Equal(buf[:n], rec) {
			t.Fatalf("pop %d = %q (%d), want %q", i, buf[:n], n, rec)
		}
	}
	if machine.Meter.Count(clock.OpRingPush) != 11 || machine.Meter.Count(clock.OpRingPop) != 11 {
		t.Fatalf("push/pop charges = %d/%d, want 11/11",
			machine.Meter.Count(clock.OpRingPush), machine.Meter.Count(clock.OpRingPop))
	}
}

func TestRingFullEmpty(t *testing.T) {
	r, _, _, _ := newTestRing(t, 2, 16)
	p, c := r.Producer(), r.Consumer()

	if _, err := c.Pop(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("pop of empty ring = %v, want ErrEmpty", err)
	}
	if err := p.Push([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Push([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := p.Push([]byte("c")); !errors.Is(err, ErrFull) {
		t.Fatalf("push into full ring = %v, want ErrFull", err)
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	// The freed slot is visible to the producer via the head word.
	if err := p.Push([]byte("c")); err != nil {
		t.Fatalf("push after release: %v", err)
	}
	if err := p.Push([]byte("too long for a slot")); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("oversize push = %v, want ErrRecordSize", err)
	}
}

func TestRingGeometry(t *testing.T) {
	machine := hw.New(hw.Config{PhysFrames: 512, CPUs: 1})
	svc := mem.New(machine)
	reg := shm.NewRegistry(svc)
	prod, cons := svc.NewDomain(), svc.NewDomain()
	if _, err := New(machine.Meter, reg, prod, cons, 0, 64); !errors.Is(err, ErrGeometry) {
		t.Fatalf("zero slots = %v, want ErrGeometry", err)
	}
	if _, err := New(machine.Meter, reg, prod, cons, 4, -1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("negative slot size = %v, want ErrGeometry", err)
	}
	// Descriptors spill past page 0 when slots don't fit; payload
	// stays page-aligned behind them.
	r, err := New(machine.Meter, reg, prod, cons, 600, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pages() != 2+2 {
		t.Fatalf("600-slot ring = %d pages, want 4 (2 control+desc, 2 payload)", r.Pages())
	}
}

func TestRingInPlace(t *testing.T) {
	r, _, _, _ := newTestRing(t, 4, 4096)
	p, c := r.Producer(), r.Consumer()

	off, err := p.ProduceOffset()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	// Produce in place through the owner mapping, then publish only
	// the descriptor: the payload never rides the protocol.
	if err := r.seg.Store(off, payload); err != nil {
		t.Fatal(err)
	}
	if err := p.PushInPlace(len(payload)); err != nil {
		t.Fatal(err)
	}
	coff, n, err := c.Peek()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096 || coff != off {
		t.Fatalf("peek = (%d, %d), want (%d, 4096)", coff, n, off)
	}
	var hdr [8]byte
	if err := c.Attachment().Load(coff, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != 0x5a {
		t.Fatalf("in-place read = %#x, want 0x5a", hdr[0])
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Peek(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("peek after release = %v, want ErrEmpty", err)
	}
}

func TestRingDoorbell(t *testing.T) {
	r, _, _, _ := newTestRing(t, 8, 16)
	p, c := r.Producer(), r.Consumer()

	// Without a doorbell handle, Notify just latches the word.
	if err := p.Push([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", p.Pending())
	}
	if err := p.Notify(); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending after notify = %d, want 0", p.Pending())
	}

	// With one: a local handle that drains the ring.
	drained := 0
	decl := &obj.MethodDecl{Name: "drain"}
	h := obj.NewMethodHandle(decl, func(args ...any) ([]any, error) {
		for {
			if err := c.Release(); err != nil {
				if errors.Is(err, ErrEmpty) {
					return nil, nil
				}
				return nil, err
			}
			drained++
		}
	})
	p.SetDoorbell(h)
	for i := 0; i < 5; i++ {
		if err := p.Push([]byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Notify(); err != nil {
		t.Fatal(err)
	}
	// 1 from the latch-only notify (still unconsumed) + 5.
	if drained != 6 {
		t.Fatalf("doorbell drained %d records, want 6", drained)
	}
	// Notify with nothing pending is a no-op: no second call.
	if err := p.Notify(); err != nil {
		t.Fatal(err)
	}
	if drained != 6 {
		t.Fatalf("no-op notify drained %d records, want 6", drained)
	}
}

func TestRingHangupByProducer(t *testing.T) {
	r, _, _, _ := newTestRing(t, 4, 16)
	p, c := r.Producer(), r.Consumer()
	if err := p.Push([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := p.Hangup(); err != nil {
		t.Fatal(err)
	}
	// Hangup is a revoked-grant tombstone: the mapping is gone, so
	// even published records are lost, and the error is ErrHangup —
	// never ErrNoGrant, which would mean a forged capability.
	if _, err := c.Pop(nil); !errors.Is(err, ErrHangup) {
		t.Fatalf("pop after hangup = %v, want ErrHangup", err)
	}
	if _, err := c.Len(); !errors.Is(err, ErrHangup) {
		t.Fatalf("len after hangup = %v, want ErrHangup", err)
	}
	if err := p.Push([]byte("more")); !errors.Is(err, ErrHangup) {
		t.Fatalf("push after hangup = %v, want ErrHangup", err)
	}
}

func TestRingHangupByClose(t *testing.T) {
	r, _, _, _ := newTestRing(t, 4, 16)
	c := r.Consumer()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pop(nil); !errors.Is(err, ErrHangup) {
		t.Fatalf("pop after close = %v, want ErrHangup", err)
	}
}

func TestRingHangupByCondemn(t *testing.T) {
	machine := hw.New(hw.Config{PhysFrames: 512, CPUs: 1})
	svc := mem.New(machine)
	reg := shm.NewRegistry(svc)
	prodCtx, consCtx := svc.NewDomain(), svc.NewDomain()

	// Consumer domain dies: the condemn sweep revokes the grant, and
	// the producer finds out at the next push.
	r, err := New(machine.Meter, reg, prodCtx, consCtx, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg.CondemnDomain(consCtx)
	if err := r.Producer().Push([]byte("z")); !errors.Is(err, ErrHangup) {
		t.Fatalf("push to condemned consumer = %v, want ErrHangup", err)
	}
	reg.AbsolveDomain(consCtx)

	// Producer domain dies: the sweep destroys the segment it owns,
	// and the consumer's attachment fails.
	consCtx2 := svc.NewDomain()
	r2, err := New(machine.Meter, reg, prodCtx, consCtx2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg.CondemnDomain(prodCtx)
	if _, err := r2.Consumer().Pop(nil); !errors.Is(err, ErrHangup) {
		t.Fatalf("pop from condemned producer = %v, want ErrHangup", err)
	}
}

// TestRingConcurrentStream runs producer and consumer on separate
// goroutines: every record arrives intact and in order. Run under
// -race this is the protocol's happens-before proof.
func TestRingConcurrentStream(t *testing.T) {
	r, _, _, _ := newTestRing(t, 8, 16)
	const total = 400
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := r.Producer()
		var rec [8]byte
		for i := 0; i < total; {
			binary64(rec[:], uint64(i))
			switch err := p.Push(rec[:]); {
			case err == nil:
				i++
			case errors.Is(err, ErrFull):
				continue
			default:
				t.Errorf("push %d: %v", i, err)
				return
			}
		}
	}()
	var got []uint64
	go func() {
		defer wg.Done()
		c := r.Consumer()
		var buf [8]byte
		for len(got) < total {
			switch n, err := c.Pop(buf[:]); {
			case err == nil:
				if n != 8 {
					t.Errorf("pop: n = %d, want 8", n)
					return
				}
				got = append(got, unbinary64(buf[:]))
			case errors.Is(err, ErrEmpty):
				continue
			default:
				t.Errorf("pop: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if len(got) != total {
		t.Fatalf("consumed %d records, want %d", len(got), total)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("record %d = %d: reordered or corrupt", i, v)
		}
	}
}

// TestRingConcurrentHangup races a mid-stream revoke against the
// consumer: the consumer must observe either valid records or
// ErrHangup — never ErrNoGrant, and never a torn/recycled read. The
// per-grant access lock guarantees an in-flight copy completes before
// the revoke unmaps frames.
func TestRingConcurrentHangup(t *testing.T) {
	for round := 0; round < 20; round++ {
		r, _, _, _ := newTestRing(t, 8, 16)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p := r.Producer()
			var rec [8]byte
			for i := 0; ; i++ {
				binary64(rec[:], uint64(i))
				err := p.Push(rec[:])
				if errors.Is(err, ErrHangup) {
					return
				}
				if i == 50 {
					_ = p.Hangup()
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			c := r.Consumer()
			var buf [8]byte
			var last uint64
			seen := false
			for {
				n, err := c.Pop(buf[:])
				if err != nil {
					if errors.Is(err, ErrHangup) {
						return
					}
					if errors.Is(err, ErrEmpty) {
						continue
					}
					t.Errorf("pop: unexpected error %v (must be hangup, not %v)", err, shm.ErrNoGrant)
					return
				}
				if n != 8 {
					t.Errorf("pop: torn record, n = %d", n)
					return
				}
				v := unbinary64(buf[:])
				if seen && v != last+1 {
					t.Errorf("pop: recycled or reordered record: %d after %d", v, last)
					return
				}
				last, seen = v, true
			}
		}()
		wg.Wait()
	}
}

func binary64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func unbinary64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
