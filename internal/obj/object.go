package obj

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
)

// Origin records whether an object instance was composed statically
// (at link time, like the resident nucleus) or dynamically (at run
// time, the common case).
type Origin int

// Origins.
const (
	LinkTime Origin = iota
	RunTime
)

func (o Origin) String() string {
	if o == LinkTime {
		return "link-time"
	}
	return "run-time"
}

// Object is a concrete component instance: methods plus instance data,
// exporting one or more named interfaces. Objects are coarse grained —
// a scheduler, an IP layer, a device driver, a memory allocator.
type Object struct {
	class  string
	origin Origin
	meter  *clock.Meter

	mu     sync.RWMutex
	ifaces map[string]*BoundInterface
}

// New creates an empty object of the given class. meter may be nil
// (no cycle accounting), which the unit tests of higher layers use.
func New(class string, meter *clock.Meter) *Object {
	return &Object{
		class:  class,
		origin: RunTime,
		meter:  meter,
		ifaces: make(map[string]*BoundInterface),
	}
}

// NewStatic creates a link-time object (used for the resident nucleus).
func NewStatic(class string, meter *clock.Meter) *Object {
	o := New(class, meter)
	o.origin = LinkTime
	return o
}

// Class implements Instance.
func (o *Object) Class() string { return o.class }

// Origin reports how the instance was composed.
func (o *Object) Origin() Origin { return o.origin }

// AddInterface exports a new named interface with the given state
// pointer. All methods start unbound; use Bind or Delegate. Exporting
// an additional interface never disturbs existing interfaces — this is
// the paper's interface-evolution story.
func (o *Object) AddInterface(decl *InterfaceDecl, state any) (*BoundInterface, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.ifaces[decl.Name]; dup {
		return nil, fmt.Errorf("obj: object %q already exports %q", o.class, decl.Name)
	}
	bi := newBoundInterface(decl, state, o.meter)
	o.ifaces[decl.Name] = bi
	return bi, nil
}

// RemoveInterface withdraws an exported interface.
func (o *Object) RemoveInterface(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.ifaces[name]; !ok {
		return fmt.Errorf("%w: %q on %q", ErrNoInterface, name, o.class)
	}
	delete(o.ifaces, name)
	return nil
}

// Iface implements Instance.
func (o *Object) Iface(name string) (Invoker, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	bi, ok := o.ifaces[name]
	if !ok {
		return nil, false
	}
	return bi, true
}

// Bound returns the concrete bound interface (for binding methods).
func (o *Object) Bound(name string) (*BoundInterface, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	bi, ok := o.ifaces[name]
	return bi, ok
}

// InterfaceNames implements Instance.
func (o *Object) InterfaceNames() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.ifaces))
	for n := range o.ifaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Delegate binds every still-unbound method of the named interface to
// the same-named interface of another instance, forwarding calls. This
// is the paper's method delegation: the delegating object shares the
// delegate's code while keeping its own identity and any methods it
// bound itself. Forwarding goes through a handle pre-resolved at
// delegation time, so delegated calls skip the target's name lookup.
func (o *Object) Delegate(ifaceName string, to Instance) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	bi, ok := o.ifaces[ifaceName]
	if !ok {
		return fmt.Errorf("%w: %q on %q", ErrNoInterface, ifaceName, o.class)
	}
	target, ok := to.Iface(ifaceName)
	if !ok {
		return fmt.Errorf("%w: delegate %q does not export %q", ErrNoInterface, to.Class(), ifaceName)
	}
	for i := range bi.decl.Methods {
		m := &bi.decl.Methods[i]
		var fn Method
		if h, err := target.Resolve(m.Name); err == nil {
			fn = h.Call
		} else {
			// The target declares a different method set; keep the
			// late-bound forward so the mismatch surfaces per call.
			name := m.Name
			fn = func(args ...any) ([]any, error) {
				return target.Invoke(name, args...)
			}
		}
		// Only bind slots still empty: methods the object bound itself
		// take precedence over the delegate's.
		bi.slots[m.slot].CompareAndSwap(nil, &methodImpl{fn: fn})
	}
	return nil
}

// FullyBound reports whether every declared method of every exported
// interface has an implementation. The repository loader refuses to
// register incompletely bound instances.
func (o *Object) FullyBound() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, bi := range o.ifaces {
		if !bi.fullyBound() {
			return false
		}
	}
	return true
}

// BoundInterface is an interface exported by a concrete object: the
// declaration, the state pointer, and the bound method slots. Slots
// are a flat array indexed by the declaration's slot numbers; each
// slot is an atomic pointer so the invocation path never takes a
// lock, while Bind and Delegate may still rewire methods at run time.
type BoundInterface struct {
	decl  *InterfaceDecl
	state any
	meter *clock.Meter

	slots   []atomic.Pointer[methodImpl]
	handles []MethodHandle
}

// methodImpl is one slot's implementation: the plain dispatch form and
// optionally the buffer-threading form. fn is always set (BindInto
// wraps the into form), so every caller of the plain path works no
// matter how the method was bound.
type methodImpl struct {
	fn   Method
	into MethodInto
}

// newBoundInterface allocates the slot array and pre-builds one
// dispatch handle per declared method.
func newBoundInterface(decl *InterfaceDecl, state any, meter *clock.Meter) *BoundInterface {
	b := &BoundInterface{
		decl:    decl,
		state:   state,
		meter:   meter,
		slots:   make([]atomic.Pointer[methodImpl], len(decl.Methods)),
		handles: make([]MethodHandle, len(decl.Methods)),
	}
	for i := range decl.Methods {
		md := &decl.Methods[i]
		slot := &b.slots[i]
		b.handles[i] = MethodHandle{
			decl: md,
			call: func(args ...any) ([]any, error) {
				m := slot.Load()
				if m == nil {
					return nil, fmt.Errorf("%w: %q.%s", ErrUnbound, decl.Name, md.Name)
				}
				if meter != nil {
					meter.Charge(clock.OpIndirect)
				}
				return m.fn(args...)
			},
			into: func(out []any, args ...any) ([]any, error) {
				m := slot.Load()
				if m == nil {
					return nil, fmt.Errorf("%w: %q.%s", ErrUnbound, decl.Name, md.Name)
				}
				if meter != nil {
					meter.Charge(clock.OpIndirect)
				}
				if m.into != nil {
					return m.into(out, args...)
				}
				res, err := m.fn(args...)
				if err != nil {
					return nil, err
				}
				return append(out, res...), nil
			},
		}
	}
	return b
}

// Decl implements Invoker.
func (b *BoundInterface) Decl() *InterfaceDecl { return b.decl }

// State implements Invoker.
func (b *BoundInterface) State() any { return b.state }

// Bind installs the implementation of one declared method.
func (b *BoundInterface) Bind(method string, fn Method) error {
	md, ok := b.decl.Method(method)
	if !ok {
		return fmt.Errorf("%w: %q not declared by %q", ErrNoMethod, method, b.decl.Name)
	}
	if fn == nil {
		return fmt.Errorf("obj: nil implementation for %q.%s", b.decl.Name, method)
	}
	b.slots[md.slot].Store(&methodImpl{fn: fn})
	return nil
}

// MustBind is Bind that panics on error, for construction-time wiring.
func (b *BoundInterface) MustBind(method string, fn Method) *BoundInterface {
	if err := b.Bind(method, fn); err != nil {
		panic(err)
	}
	return b
}

// BindInto installs a method in the buffer-threading form: callers
// that go through MethodHandle.CallInto hand the implementation a
// result buffer to append into, so the invocation allocates nothing.
// Plain Invoke/Call callers are served by a wrapper that passes a nil
// buffer, preserving the ordinary return-a-fresh-slice semantics.
func (b *BoundInterface) BindInto(method string, fn MethodInto) error {
	md, ok := b.decl.Method(method)
	if !ok {
		return fmt.Errorf("%w: %q not declared by %q", ErrNoMethod, method, b.decl.Name)
	}
	if fn == nil {
		return fmt.Errorf("obj: nil implementation for %q.%s", b.decl.Name, method)
	}
	b.slots[md.slot].Store(&methodImpl{
		fn:   func(args ...any) ([]any, error) { return fn(nil, args...) },
		into: fn,
	})
	return nil
}

// MustBindInto is BindInto that panics on error.
func (b *BoundInterface) MustBindInto(method string, fn MethodInto) *BoundInterface {
	if err := b.BindInto(method, fn); err != nil {
		panic(err)
	}
	return b
}

// Resolve implements Invoker: one name lookup returns the method's
// pre-built handle. The handle tracks the slot, not the current
// implementation, so rebinding after Resolve is still observed.
func (b *BoundInterface) Resolve(method string) (MethodHandle, error) {
	md, ok := b.decl.Method(method)
	if !ok {
		return MethodHandle{}, fmt.Errorf("%w: %q.%s", ErrNoMethod, b.decl.Name, method)
	}
	return b.handles[md.slot], nil
}

// Invoke implements Invoker as the compatibility path: a name lookup
// followed by the same slot dispatch a pre-resolved handle performs
// (arity validation, one indirect-call charge, result validation).
func (b *BoundInterface) Invoke(method string, args ...any) ([]any, error) {
	h, err := b.Resolve(method)
	if err != nil {
		return nil, err
	}
	return h.Call(args...)
}

// fullyBound reports whether every slot holds an implementation.
func (b *BoundInterface) fullyBound() bool {
	for i := range b.slots {
		if b.slots[i].Load() == nil {
			return false
		}
	}
	return true
}

var _ Invoker = (*BoundInterface)(nil)
var _ Instance = (*Object)(nil)
