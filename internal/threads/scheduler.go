package threads

import (
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
)

// Scheduler multiplexes simulated threads over the machine's virtual
// processors. With one CPU (NewScheduler) it dispatches round-robin
// from a single queue, exactly as the original uniprocessor design;
// with more (NewSchedulerCPUs) it runs one dispatch loop per CPU over
// per-CPU run queues with randomized work stealing, so pop-up threads
// from concurrent interrupts genuinely run on distinct CPUs. It also
// owns the sleep queue and charges all thread-related costs.
type Scheduler struct {
	meter *clock.Meter

	// mu is the global scheduler lock: sleepers, live count, thread
	// IDs, and the wait-queue registrations of the synchronization
	// primitives (sync.go). The per-CPU run queues have their own
	// locks, nested inside mu.
	mu       sync.Mutex
	nextID   uint64
	sleepers []sleeper
	live     int // spawned or promoted, not yet done

	cpus   []runqueue
	rr     atomic.Uint64 // round-robin placement for unaffined threads
	nready atomic.Int64  // threads queued across all run queues

	// Idle coordination for the multi-CPU dispatch loops. idleMu nests
	// inside mu (enqueues signal while callers hold mu) and is never
	// held while taking mu. nparked mirrors parked so the enqueue hot
	// path can skip the mutex when no CPU is waiting.
	idleMu   sync.Mutex
	idleCond *sync.Cond
	parked   int
	nparked  atomic.Int64
	runDone  bool

	runMu  sync.Mutex // serializes RunUntilIdle calls
	steals atomic.Uint64
	parks  atomic.Uint64
}

// runqueue is one CPU's local deque: the owner pops from the front
// (FIFO, preserving round-robin fairness), thieves steal from the
// back. Queues live by value in one contiguous array, padded to a
// 64-byte stride, so adjacent queues' locks do not false-share.
type runqueue struct {
	mu sync.Mutex
	q  []*Thread
	_  [32]byte
}

type sleeper struct {
	t        *Thread
	deadline uint64
}

// NewScheduler builds a single-CPU scheduler charging against meter.
func NewScheduler(meter *clock.Meter) *Scheduler {
	return NewSchedulerCPUs(meter, 1)
}

// NewSchedulerCPUs builds a scheduler dispatching over ncpu virtual
// CPUs (ncpu <= 0 means 1).
func NewSchedulerCPUs(meter *clock.Meter, ncpu int) *Scheduler {
	if ncpu <= 0 {
		ncpu = 1
	}
	s := &Scheduler{meter: meter, cpus: make([]runqueue, ncpu)}
	s.idleCond = sync.NewCond(&s.idleMu)
	return s
}

// Meter exposes the scheduler's meter (used by the event service).
func (s *Scheduler) Meter() *clock.Meter { return s.meter }

// NumCPUs reports the number of virtual CPUs the scheduler dispatches
// on.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// Steals reports how many threads have been taken from another CPU's
// run queue since construction.
func (s *Scheduler) Steals() uint64 { return s.steals.Load() }

// Parks reports how many times an idle CPU parked waiting for work.
func (s *Scheduler) Parks() uint64 { return s.parks.Load() }

func (s *Scheduler) newThread(name string, proto bool) *Thread {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.live++
	s.mu.Unlock()
	t := &Thread{
		id:        id,
		name:      name,
		sched:     s,
		proto:     proto,
		resume:    make(chan struct{}, 1),
		parked:    make(chan struct{}, 1),
		protoDone: make(chan bool, 1),
		done:      make(chan struct{}),
	}
	t.cpu.Store(-1)
	return t
}

// Spawn creates a real thread that will run fn when scheduled. The
// full thread-creation cost is charged immediately.
func (s *Scheduler) Spawn(name string, fn func(*Thread)) *Thread {
	return s.SpawnOn(-1, name, fn)
}

// SpawnOn is Spawn with a CPU affinity: the thread is queued on (and
// keeps returning to) the given CPU's run queue, unless stolen. A
// negative cpu means no affinity (round-robin placement). The event
// service uses it to route pop-up threads to the CPU an interrupt was
// bound to.
func (s *Scheduler) SpawnOn(cpu int, name string, fn func(*Thread)) *Thread {
	s.meter.Charge(clock.OpThreadCreate)
	t := s.newThread(name, false)
	if cpu >= 0 && cpu < len(s.cpus) {
		t.cpu.Store(int32(cpu))
	}
	go func() {
		<-t.resume
		t.setState(StateRunning)
		fn(t)
		s.finish(t)
	}()
	s.mu.Lock()
	t.setState(StateReady)
	s.ready(t)
	s.mu.Unlock()
	return t
}

// PopUpEager turns an event into a thread the expensive way: a full
// thread is created and scheduled for every event (the baseline the
// proto-thread optimization is measured against).
func (s *Scheduler) PopUpEager(name string, fn func(*Thread)) *Thread {
	return s.Spawn(name, fn)
}

// PopUpEagerOn is PopUpEager with a CPU affinity.
func (s *Scheduler) PopUpEagerOn(cpu int, name string, fn func(*Thread)) *Thread {
	return s.SpawnOn(cpu, name, fn)
}

// PopUpProto runs fn as a proto-thread: it executes immediately on the
// caller's (interrupt) context for the cheap proto-thread cost. If fn
// runs to completion without blocking, no thread is ever created. The
// moment fn blocks, yields or sleeps, the proto-thread is promoted to
// a real thread (promotion + creation costs are charged) and PopUpProto
// returns while the new thread continues under the scheduler.
//
// The returned thread handle reports, via Promoted, which path was
// taken; ran is true when fn completed inline.
func (s *Scheduler) PopUpProto(name string, fn func(*Thread)) (t *Thread, ran bool) {
	return s.PopUpProtoOn(-1, name, fn)
}

// PopUpProtoOn is PopUpProto with a CPU affinity for the promotion
// path: a proto-thread that blocks is queued on (and keeps returning
// to) the given CPU, so a promoted interrupt handler stays on the CPU
// its event was bound to. The inline fast path is unaffected. A
// negative cpu means no affinity.
func (s *Scheduler) PopUpProtoOn(cpu int, name string, fn func(*Thread)) (t *Thread, ran bool) {
	s.meter.Charge(clock.OpProtoThread)
	t = s.newThread(name, true)
	if cpu >= 0 && cpu < len(s.cpus) {
		t.cpu.Store(int32(cpu))
	}
	t.setState(StateRunning)
	go func() {
		fn(t)
		s.finish(t)
	}()
	completed := <-t.protoDone
	return t, completed
}

// chargePromotion accounts for turning a proto-thread into a real
// thread. Callers hold s.mu.
func (s *Scheduler) chargePromotion() {
	s.meter.Charge(clock.OpPromote)
	s.meter.Charge(clock.OpThreadCreate)
}

// finish retires a thread.
func (s *Scheduler) finish(t *Thread) {
	s.mu.Lock()
	t.setState(StateDone)
	s.live--
	s.mu.Unlock()
	close(t.done)
	t.stop(true)
}

// ready queues t for dispatch: on its affine CPU when it has one, else
// round-robin. Thread-state transitions call it holding s.mu; the run
// queues have their own locks, so that nesting is the only ordering
// requirement. The enqueue is visible to a concurrent dispatcher the
// moment the queue lock drops — the thread may be popped (and its
// resume buffered) before it has even parked; the baton protocol
// absorbs this.
func (s *Scheduler) ready(t *Thread) {
	cpu := 0
	if n := len(s.cpus); n > 1 {
		if a := int(t.cpu.Load()); a >= 0 && a < n {
			cpu = a
		} else {
			cpu = int(s.rr.Add(1)-1) % n
		}
	}
	rq := &s.cpus[cpu]
	// Count before enqueueing: quiesce declares the run done only when
	// nready is zero under idleMu, so an enqueue in flight must be
	// visible in the counter before (never after) it is visible in a
	// queue — over-counting briefly just makes an idle CPU rescan;
	// under-counting would let the run end with a thread stranded.
	s.nready.Add(1)
	rq.mu.Lock()
	rq.q = append(rq.q, t)
	rq.mu.Unlock()
	// Wake a parked CPU — but skip the (global) idleMu entirely when
	// nobody is parked, so saturated enqueues stay on per-CPU locks.
	// No wakeup is lost: a parker bumps nparked before re-checking
	// nready under idleMu, and this enqueue bumped nready before
	// reading nparked; sequentially consistent atomics forbid both
	// sides observing the other's pre-update value.
	if len(s.cpus) > 1 && s.nparked.Load() > 0 {
		s.idleMu.Lock()
		s.idleCond.Signal()
		s.idleMu.Unlock()
	}
}

// Wake moves a blocked thread to the ready queue. Synchronization
// primitives call it with the scheduler lock held via wakeLocked; the
// exported form is for event sources living outside this package.
func (s *Scheduler) Wake(t *Thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wakeLocked(t)
}

func (s *Scheduler) wakeLocked(t *Thread) {
	t.setState(StateReady)
	s.ready(t)
}

// RunUntilIdle dispatches ready threads until none remain. When every
// run queue drains but threads are sleeping on the virtual clock, the
// clock is advanced to the earliest deadline and the sleepers are
// woken. With one CPU it dispatches inline on the caller, round-robin,
// exactly as the original uniprocessor scheduler; with more it runs
// one dispatch loop per CPU, each popping its local queue, stealing
// from random victims when empty, and parking when there is nothing to
// steal. It returns the number of dispatches performed.
func (s *Scheduler) RunUntilIdle() int {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if len(s.cpus) == 1 {
		return s.runSequential()
	}
	return s.runParallel()
}

func (s *Scheduler) runSequential() int {
	dispatches := 0
	for {
		t := s.next()
		if t == nil {
			return dispatches
		}
		dispatches++
		s.dispatch(0, t)
	}
}

// dispatch hands the processor to t and waits for it to stop running.
func (s *Scheduler) dispatch(cpu int, t *Thread) {
	t.cpu.Store(int32(cpu))
	s.meter.Charge(clock.OpSchedule)
	t.resume <- struct{}{}
	<-t.parked // until the thread stops running again
}

// next pops the next ready thread for the single-CPU path, advancing
// virtual time over sleep gaps when necessary. It returns nil when the
// system is idle. Holding s.mu across the empty-queue check and the
// clock advance keeps them atomic against concurrent Spawns, exactly
// as the original single-runqueue scheduler behaved.
func (s *Scheduler) next() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.pop(0); t != nil {
			return t
		}
		if !s.advanceDueLocked() {
			return nil
		}
	}
}

// pop takes the oldest thread from one CPU's queue.
func (s *Scheduler) pop(cpu int) *Thread {
	rq := &s.cpus[cpu]
	rq.mu.Lock()
	if len(rq.q) == 0 {
		rq.mu.Unlock()
		return nil
	}
	t := rq.q[0]
	rq.q = rq.q[1:]
	rq.mu.Unlock()
	s.nready.Add(-1)
	return t
}

// stealFor scans the other CPUs' queues from a random starting victim,
// taking the newest thread (the back of the deque) from the first
// non-empty one.
func (s *Scheduler) stealFor(me int, rng *clock.Rand) *Thread {
	n := len(s.cpus)
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == me {
			continue
		}
		rq := &s.cpus[v]
		rq.mu.Lock()
		if ln := len(rq.q); ln > 0 {
			t := rq.q[ln-1]
			rq.q = rq.q[:ln-1]
			rq.mu.Unlock()
			s.nready.Add(-1)
			s.steals.Add(1)
			return t
		}
		rq.mu.Unlock()
	}
	return nil
}

// advanceDueLocked advances the virtual clock to the earliest sleep
// deadline and wakes every due sleeper. It returns false when there is
// nothing to advance to (no sleepers). Callers hold s.mu.
func (s *Scheduler) advanceDueLocked() bool {
	if len(s.sleepers) == 0 {
		return false
	}
	earliest := s.sleepers[0].deadline
	for _, sl := range s.sleepers[1:] {
		if sl.deadline < earliest {
			earliest = sl.deadline
		}
	}
	now := s.meter.Clock.Now()
	if earliest > now {
		s.meter.Clock.Advance(earliest - now)
	}
	now = s.meter.Clock.Now()
	var rest []sleeper
	for _, sl := range s.sleepers {
		if sl.deadline <= now {
			s.wakeLocked(sl.t)
		} else {
			rest = append(rest, sl)
		}
	}
	s.sleepers = rest
	return true
}

// runParallel runs one dispatch loop per CPU until the whole system is
// idle: every queue empty, every CPU parked, and no sleepers left to
// advance the clock to.
func (s *Scheduler) runParallel() int {
	s.idleMu.Lock()
	s.runDone = false
	s.parked = 0
	s.nparked.Store(0)
	s.idleMu.Unlock()
	var dispatches atomic.Int64
	var wg sync.WaitGroup
	for i := range s.cpus {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			s.dispatchLoop(cpu, &dispatches)
		}(i)
	}
	wg.Wait()
	return int(dispatches.Load())
}

func (s *Scheduler) dispatchLoop(cpu int, dispatches *atomic.Int64) {
	rng := clock.NewRand(uint64(cpu)*0x9e3779b9 + 1)
	for {
		t := s.pop(cpu)
		if t == nil {
			t = s.stealFor(cpu, rng)
		}
		if t != nil {
			dispatches.Add(1)
			s.dispatch(cpu, t)
			continue
		}
		if s.quiesce() {
			return
		}
	}
}

// quiesce parks an idle CPU until work appears, returning true when the
// run is over. The last CPU to park is responsible for the virtual
// clock: if every queue is empty and threads sleep on the clock, it
// advances time and wakes them; if there is nothing left at all, it
// declares the run done and releases everyone.
func (s *Scheduler) quiesce() (done bool) {
	s.idleMu.Lock()
	s.parked++
	s.nparked.Add(1)
	if s.parked == len(s.cpus) && s.nready.Load() == 0 {
		// advanceDueLocked needs s.mu, which must never be acquired
		// under idleMu; drop and re-take. Another CPU waking in the
		// window only delays the done declaration, never corrupts it.
		s.idleMu.Unlock()
		s.mu.Lock()
		progressed := s.nready.Load() > 0 || s.advanceDueLocked()
		s.mu.Unlock()
		s.idleMu.Lock()
		if !progressed && s.nready.Load() == 0 && s.parked == len(s.cpus) && !s.runDone {
			s.runDone = true
			s.idleCond.Broadcast()
		}
	}
	for !s.runDone && s.nready.Load() == 0 {
		s.parks.Add(1)
		s.idleCond.Wait()
	}
	done = s.runDone
	s.parked--
	s.nparked.Add(-1)
	s.idleMu.Unlock()
	return done
}

// ReadyCount reports the number of threads waiting to run.
func (s *Scheduler) ReadyCount() int {
	return int(s.nready.Load())
}

// LiveCount reports spawned/promoted threads that have not finished.
func (s *Scheduler) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}
