// Package proxy implements Paramecium's cross-domain invocation:
// "Importing an object from another protection domain, by means of the
// directory service, causes a proxy to appear. This proxy provides
// exactly the same set of interfaces as the original object, but each
// interface entry will cause a page fault when referenced. Control is
// then transferred to a per page fault handler which will map in
// arguments into the object's protection domain, switch context, and
// invoke the actual method. Return values are handled similarly."
//
// A Proxy satisfies obj.Instance, so the directory service can hand it
// out exactly where a local object would appear; callers cannot tell
// the difference except in cycles.
//
// The invocation plane is fully concurrent: every call carries its own
// pooled call frame, keyed by a token threaded through the trap frame,
// so any number of goroutines may call through one proxy — even the
// same method of the same interface — without serializing on anything
// wider than the MMU's own short critical sections.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/probe"
	"paramecium/internal/shm"
)

// Errors.
var (
	ErrClosed     = errors.New("proxy: proxy closed")
	ErrNoDelivery = errors.New("proxy: fault did not reach the call handler")
)

// DefaultEntryBase is where proxy entry pages are placed in the
// caller's address space when the factory is built with base 0.
const DefaultEntryBase mmu.VAddr = 0x7000_0000

// callFrame carries one in-flight cross-domain call — or, when batch
// is non-nil, a whole vectored group of them behind one crossing. The
// kernel half (the fault handler) reads the pre-resolved target
// handle, args and result buffer and writes res, err and done; the
// caller half owns the frame before and after the fault. Frames are
// pooled (single and batch alike share the pool and the sharded frame
// table) — steady-state invocation allocates nothing for the call
// machinery itself.
type callFrame struct {
	th    obj.MethodHandle // pre-resolved dispatch into the target
	args  []any
	out   []any // caller-provided result buffer (may be nil)
	res   []any
	err   error
	done  bool
	batch []obj.BatchCall // non-nil: vectored call, entries carry their own targets
	mode  obj.BatchMode   // dispatch mode that formed the batch (telemetry)
}

var framePool = sync.Pool{New: func() any { return new(callFrame) }}

func newFrame(th obj.MethodHandle, args, out []any) *callFrame {
	fr := framePool.Get().(*callFrame)
	fr.th, fr.args, fr.out = th, args, out
	fr.res, fr.err, fr.done, fr.batch = nil, nil, false, nil
	return fr
}

func newBatchFrame(calls []obj.BatchCall, mode obj.BatchMode) *callFrame {
	fr := framePool.Get().(*callFrame)
	fr.th, fr.args, fr.out = obj.MethodHandle{}, nil, nil
	fr.res, fr.err, fr.done, fr.batch = nil, nil, false, calls
	fr.mode = mode
	return fr
}

func putFrame(fr *callFrame) {
	// Drop value references so pooled frames do not pin caller data.
	*fr = callFrame{}
	framePool.Put(fr)
}

// frameShards is the number of lock shards in a frame table. Power of
// two so the token-to-shard map is a mask.
const frameShards = 32

// frameTable maps live call tokens to their frames. It is sharded by
// token so concurrent calls — the steady state of the invocation
// plane — rarely contend on the same lock. Tokens start at 1; token 0
// in a trap frame means "not a proxy call".
type frameTable struct {
	next   atomic.Uint64
	shards [frameShards]frameShard
}

type frameShard struct {
	mu sync.Mutex
	m  map[uint64]*callFrame
	// Pad the shard to a 64-byte stride so adjacent shards' locks do
	// not share a cache line.
	_ [48]byte
}

func (t *frameTable) shard(token uint64) *frameShard {
	return &t.shards[token&(frameShards-1)]
}

// put registers fr under a fresh token and returns the token.
//
//paramecium:hotpath
func (t *frameTable) put(fr *callFrame) uint64 {
	token := t.next.Add(1)
	s := t.shard(token)
	s.mu.Lock()
	if s.m == nil {
		//paralint:ignore hotpathalloc one-time lazy shard initialization, amortized to zero per call
		s.m = make(map[uint64]*callFrame)
	}
	s.m[token] = fr
	s.mu.Unlock()
	return token
}

// get returns the frame registered under token, or nil.
func (t *frameTable) get(token uint64) *callFrame {
	if token == 0 {
		return nil
	}
	s := t.shard(token)
	s.mu.Lock()
	fr := s.m[token]
	s.mu.Unlock()
	return fr
}

// drop unregisters token.
func (t *frameTable) drop(token uint64) {
	s := t.shard(token)
	s.mu.Lock()
	delete(s.m, token)
	s.mu.Unlock()
}

// Factory creates proxies, managing the entry-page address space of
// each client context. All proxies of one factory share its frame
// table; the per-page fault handler uses the trap frame's token to
// find the calling goroutine's own frame.
type Factory struct {
	svc    *mem.Service
	base   mmu.VAddr
	frames frameTable

	// grants, when set, validates shared-memory grant capabilities
	// passed as call arguments; see SetGrantRegistry. Written once at
	// boot, before the factory serves calls.
	grants *shm.Registry

	mu        sync.Mutex
	nextVA    map[mmu.ContextID]mmu.VAddr
	live      map[*Proxy]struct{}        // open proxies, for CloseTarget
	condemned map[mmu.ContextID]struct{} // targets being torn down
	// closeHooks run inside CloseTarget, right after the target is
	// condemned: subsystems whose per-domain teardown must be atomic
	// with the proxy condemn (the shared-memory registry) register
	// here, so one CloseTarget quiesces calls and mappings together.
	closeHooks []func(mmu.ContextID)
}

// NewFactory builds a factory allocating entry pages from base.
func NewFactory(svc *mem.Service, base mmu.VAddr) *Factory {
	if base == 0 {
		base = DefaultEntryBase
	}
	return &Factory{
		svc:       svc,
		base:      base,
		nextVA:    make(map[mmu.ContextID]mmu.VAddr),
		live:      make(map[*Proxy]struct{}),
		condemned: make(map[mmu.ContextID]struct{}),
	}
}

// CloseTarget closes every live proxy of this factory whose target
// lives in ctx, draining their in-flight calls, and condemns the
// context so the factory refuses to build new proxies onto it: when
// CloseTarget returns, no cross-domain call is executing in ctx
// through any of this factory's proxies, and none ever will again.
// Destroying a protection domain uses this to quiesce inbound calls —
// proxies held by other domains (or built by kernel-resident callers)
// that the dying domain's own bind cache knows nothing about. The
// condemn closes the remaining window, a racing New that would
// register its proxy after the snapshot below.
func (f *Factory) CloseTarget(ctx mmu.ContextID) {
	f.mu.Lock()
	f.condemned[ctx] = struct{}{}
	hooks := make([]func(mmu.ContextID), len(f.closeHooks))
	copy(hooks, f.closeHooks)
	var closing []*Proxy
	for p := range f.live {
		if p.targetCtx == ctx {
			closing = append(closing, p)
		}
	}
	f.mu.Unlock()
	// The hooks run after the condemn is visible but before the drain:
	// a pending segment attach into the dying domain either completed
	// before its registry's condemn (and was revoked by it) or fails
	// from here on — no fresh mapping appears after CloseTarget, just
	// as no fresh proxy route does.
	for _, h := range hooks {
		h(ctx)
	}
	for _, p := range closing {
		_ = p.Close()
	}
}

// OnCloseTarget registers a hook to run inside every future
// CloseTarget, after the target context is condemned. The kernel wires
// the shared-memory registry's CondemnDomain here, so destroying a
// domain fails pending segment attaches through the same sweep that
// condemns its proxies.
func (f *Factory) OnCloseTarget(h func(mmu.ContextID)) {
	f.mu.Lock()
	f.closeHooks = append(f.closeHooks, h)
	f.mu.Unlock()
}

// SetGrantRegistry teaches the factory to validate shared-memory grant
// capabilities (shm.GrantRef arguments) before carrying a call across
// the boundary: a ref that is forged, revoked, or addressed to a
// domain other than the call's target fails the call up front, before
// any crossing cost is paid — the kernel validates capability words
// while decoding, not after delivering. Call once at boot, before the
// factory serves calls.
func (f *Factory) SetGrantRegistry(reg *shm.Registry) { f.grants = reg }

// checkGrantArgs validates any grant capabilities among a call's
// arguments for delivery to the target context. The scan is a type
// assertion per argument — no charge, exactly like arity validation.
func (p *Proxy) checkGrantArgs(args []any) error {
	reg := p.factory.grants
	if reg == nil {
		return nil
	}
	for _, a := range args {
		if ref, ok := a.(shm.GrantRef); ok {
			if err := reg.CheckDeliverable(ref, p.targetCtx); err != nil {
				return fmt.Errorf("proxy: grant argument: %w", err)
			}
		}
	}
	return nil
}

// Absolve forgets a condemned target context, bounding the condemned
// set for kernels that churn domains. Only safe once the context
// itself no longer exists (its MMU context destroyed): from then on
// every crossing into it fails at the MMU, so the condemn gate is
// redundant. A proxy built in the narrow absolved window is inert —
// its calls all fail "target domain gone" — and is evicted by the
// bind caches' staleness check.
func (f *Factory) Absolve(ctx mmu.ContextID) {
	f.mu.Lock()
	delete(f.condemned, ctx)
	f.mu.Unlock()
}

// allocEntryPage reserves one (never-mapped) page of entry slots in
// callerCtx.
func (f *Factory) allocEntryPage(callerCtx mmu.ContextID) mmu.VAddr {
	f.mu.Lock()
	defer f.mu.Unlock()
	va, ok := f.nextVA[callerCtx]
	if !ok {
		va = f.base
	}
	f.nextVA[callerCtx] = va + mmu.PageSize
	return va
}

// New builds a proxy in callerCtx for target living in targetCtx. One
// entry page per exported interface is reserved; each method occupies
// an 8-byte slot on its page.
func (f *Factory) New(callerCtx, targetCtx mmu.ContextID, target obj.Instance) (*Proxy, error) {
	if target == nil {
		return nil, errors.New("proxy: nil target")
	}
	p := &Proxy{
		factory:   f,
		class:     target.Class(),
		callerCtx: callerCtx,
		targetCtx: targetCtx,
		target:    target,
		ifaces:    make(map[string]*entryIface),
	}
	p.drainCv = sync.NewCond(&p.drainMu)
	for _, name := range target.InterfaceNames() {
		iv, ok := target.Iface(name)
		if !ok {
			continue
		}
		pageVA := f.allocEntryPage(callerCtx)
		// Entry slots are laid out by the declaration's slot indices,
		// the same numbering every bound interface dispatches by.
		ei := &entryIface{proxy: p, target: iv, pageVA: pageVA}
		if err := f.svc.RegisterFaultHandler(callerCtx, pageVA, ei.handleFault); err != nil {
			_ = p.Close()
			return nil, fmt.Errorf("proxy: entry page for %q: %w", name, err)
		}
		p.ifaces[name] = ei
	}
	// The condemned check is atomic with the live-registration, so a
	// CloseTarget cannot slip between them: a proxy either lands in
	// the snapshot CloseTarget closes, or fails here.
	f.mu.Lock()
	if _, dead := f.condemned[targetCtx]; dead {
		f.mu.Unlock()
		_ = p.Close()
		return nil, fmt.Errorf("proxy: target domain %d destroyed", targetCtx)
	}
	f.live[p] = struct{}{}
	f.mu.Unlock()
	return p, nil
}

// Proxy is a cross-domain stand-in for an object in another protection
// domain. A proxy is safe for unbounded concurrent use: the interface
// map is immutable after construction, the call path keeps its state
// in per-call frames, and close/call coordination is a single atomic
// flag.
type Proxy struct {
	factory   *Factory
	class     string
	callerCtx mmu.ContextID
	targetCtx mmu.ContextID
	target    obj.Instance

	closed    atomic.Bool
	calls     atomic.Uint64
	crossings atomic.Uint64
	inflight  atomic.Int64 // fault handlers currently executing
	// drainMu/drainCv let any number of Close callers wait for
	// inflight to hit zero; the last handler out broadcasts.
	drainMu sync.Mutex
	drainCv *sync.Cond
	ifaces  map[string]*entryIface // immutable after New
}

// Class implements obj.Instance. Proxies are transparent: they present
// the target's class name.
func (p *Proxy) Class() string { return p.class }

// InterfaceNames implements obj.Instance.
func (p *Proxy) InterfaceNames() []string {
	out := make([]string, 0, len(p.ifaces))
	for n := range p.ifaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Iface implements obj.Instance.
func (p *Proxy) Iface(name string) (obj.Invoker, bool) {
	ei, ok := p.ifaces[name]
	if !ok {
		return nil, false
	}
	return ei, true
}

// Calls reports the number of cross-domain invocations performed
// (every entry of a vectored call counts).
func (p *Proxy) Calls() uint64 {
	return p.calls.Load()
}

// Crossings reports the number of protection crossings this proxy has
// actually paid: a single call is one, a vectored group of N calls is
// also one. Calls/Crossings is therefore the amortization achieved —
// 1.0 for unbatched traffic, the batch size for perfectly vectored
// traffic. The mixed-target P8 tests pin grouped dispatch to exactly
// one crossing per distinct target with this counter.
func (p *Proxy) Crossings() uint64 {
	return p.crossings.Load()
}

// DispatchBatch implements obj.Batcher: it carries a group of calls
// resolved through this proxy across the domain boundary in a single
// crossing — one CPU lease, one page fault (the trap cost charged
// once), one context-switch pair — executing each entry in the
// target's context with per-entry results and errors. The batch frame
// is pooled in the factory's sharded frame table exactly like a
// single call's. Error semantics match a run of single calls: a
// closed proxy fails every entry with ErrClosed, a dead target
// context fails them all with "target domain gone", and a failing
// method fails only its own entry. The group-level error, if any, is
// returned as well so Batch.Run can surface it.
//
//paramecium:hotpath
func (p *Proxy) DispatchBatch(calls []obj.BatchCall) error {
	return p.dispatchBatch(calls, obj.InOrder)
}

// DispatchBatchMode implements obj.ModeBatcher: identical dispatch to
// DispatchBatch, with the forming mode recorded in the flight
// recorder's batch-dispatch event.
//
//paramecium:hotpath
func (p *Proxy) DispatchBatchMode(calls []obj.BatchCall, mode obj.BatchMode) error {
	return p.dispatchBatch(calls, mode)
}

//paramecium:hotpath
func (p *Proxy) dispatchBatch(calls []obj.BatchCall, mode obj.BatchMode) error {
	if len(calls) == 0 {
		return nil
	}
	if p.closed.Load() {
		for i := range calls {
			calls[i].SetResult(nil, ErrClosed)
		}
		return ErrClosed
	}
	fr := newBatchFrame(calls, mode)
	token := p.factory.frames.put(fr)
	// Deferred so a panicking target method cannot leak the table
	// entry, exactly as on the single-call path.
	defer func() {
		p.factory.frames.drop(token)
		putFrame(fr)
	}()

	// One touch of the first entry's slot drives the whole group: the
	// handler reads the batch out of the frame, so the remaining
	// entries cross without faulting again. The key is checked, not
	// asserted: a handle built by hand against this proxy as Batcher
	// (possible through the public NewBatchableHandle) must fail its
	// batch, not panic the fault path.
	key, ok := calls[0].Key().(batchKey)
	if !ok {
		err := errors.New("proxy: batch entry not resolved through this proxy")
		for i := range calls {
			calls[i].SetResult(nil, err)
		}
		return err
	}
	slotVA := key.slotVA
	machine := p.factory.svc.Machine()
	lease := machine.AcquireCPU()
	_ = lease.CPU().TouchTagged(p.callerCtx, slotVA, mmu.AccessExec, token)
	lease.Release()

	if !fr.done {
		// The handler never saw the group: the proxy was closed (its
		// fault handler unregistered) between the closed check and the
		// touch, or the fault went astray.
		err := error(nil)
		if p.closed.Load() {
			err = ErrClosed
		} else {
			err = fmt.Errorf("%w: batch of %d", ErrNoDelivery, len(calls))
		}
		for i := range calls {
			calls[i].SetResult(nil, err)
		}
		return err
	}
	p.calls.Add(uint64(len(calls)))
	p.crossings.Add(1)
	return fr.err
}

// TargetContext reports the protection domain of the real object.
func (p *Proxy) TargetContext() mmu.ContextID { return p.targetCtx }

// Closed reports whether the proxy has been closed. Bind caches use it
// to evict dead entries (a proxy closed by CloseTarget when its target
// domain died) instead of handing them out forever.
func (p *Proxy) Closed() bool { return p.closed.Load() }

// Close releases the proxy's entry pages and fault handlers, then
// waits for in-flight cross-domain calls to drain: when Close returns,
// no call is executing in the target's domain, so the caller may
// safely destroy the target context and free target state. Calls
// racing with Close either complete normally or fail with ErrClosed.
//
// A Close that loses the race to a concurrent closer still waits for
// the drain before returning ErrClosed, so teardown sequenced after
// any returned Close — winner or loser — is safe.
//
// Close must not be called from inside a target method of this same
// proxy: the fault handler runs on the calling goroutine, so its own
// in-flight count could never drain — the same rule as
// sync.WaitGroup.Wait from inside a worker. Likewise anything Close
// transitively blocks on (core.Kernel.DestroyDomain closes proxies
// outside the domain lock for exactly this reason).
func (p *Proxy) Close() error {
	won := p.closed.CompareAndSwap(false, true)
	if won {
		p.factory.mu.Lock()
		delete(p.factory.live, p)
		p.factory.mu.Unlock()
		for _, ei := range p.ifaces {
			_ = p.factory.svc.UnregisterFaultHandler(p.callerCtx, ei.pageVA)
		}
	}
	// Quiesce. Handlers that entered before closed was set are counted
	// in inflight; handlers entering after will observe closed and do
	// no target-side work, so once the counter drains no call is (or
	// will be) executing in the target domain. The last handler out
	// broadcasts under drainMu, so any number of Close callers block
	// here without spinning or losing wakeups.
	p.drainMu.Lock()
	for p.inflight.Load() != 0 {
		p.drainCv.Wait()
	}
	p.drainMu.Unlock()
	if !won {
		return ErrClosed
	}
	return nil
}

// entryIface is one interface's entry page. It holds no per-call
// state: every invocation's frame lives in the factory's frame table
// for exactly the duration of its fault, so concurrent calls through
// the same interface — or the same method — never serialize here.
type entryIface struct {
	proxy  *Proxy
	target obj.Invoker
	pageVA mmu.VAddr
}

// Decl implements obj.Invoker.
func (e *entryIface) Decl() *obj.InterfaceDecl { return e.target.Decl() }

// State implements obj.Invoker. Cross-domain state pointers are not
// addressable from the caller's domain; proxies return nil, exactly as
// a hardware implementation would have to.
func (e *entryIface) State() any { return nil }

// batchKey is the proxy's private routing key carried by each of its
// resolved handles (obj.NewBatchableHandle): the pre-resolved dispatch
// into the target and the entry slot a vectored group faults on.
type batchKey struct {
	th     obj.MethodHandle
	slotVA mmu.VAddr
}

// Invoke implements obj.Invoker: it references the method's entry
// slot, taking the page fault that drives the cross-domain call.
func (e *entryIface) Invoke(method string, args ...any) ([]any, error) {
	md, ok := e.target.Decl().Method(method)
	if !ok {
		return nil, fmt.Errorf("%w: %q.%s", obj.ErrNoMethod, e.target.Decl().Name, method)
	}
	if err := obj.CheckArity(md, args); err != nil {
		return nil, err
	}
	th, err := e.target.Resolve(method)
	if err != nil {
		return nil, err
	}
	return e.fault(md, th, args, nil)
}

// Resolve implements obj.Invoker: the entry slot's address and the
// dispatch into the target are computed once, and the returned handle
// faults straight into the kernel on every Call with no per-call
// method lookup on either side of the boundary. One handle may be
// shared by any number of goroutines. The handle is batchable: a
// Batch groups consecutive calls through this proxy into a single
// crossing (Proxy.DispatchBatch).
func (e *entryIface) Resolve(method string) (obj.MethodHandle, error) {
	md, ok := e.target.Decl().Method(method)
	if !ok {
		return obj.MethodHandle{}, fmt.Errorf("%w: %q.%s", obj.ErrNoMethod, e.target.Decl().Name, method)
	}
	th, err := e.target.Resolve(method)
	if err != nil {
		return obj.MethodHandle{}, err
	}
	key := batchKey{th: th, slotVA: e.pageVA + mmu.VAddr(md.Slot()*8)}
	return obj.NewBatchableHandle(md,
		func(args ...any) ([]any, error) {
			return e.fault(md, th, args, nil)
		},
		func(out []any, args ...any) ([]any, error) {
			return e.fault(md, th, args, out)
		},
		e.proxy, key), nil
}

// fault performs the cross-domain call for one pre-looked-up method:
// it registers a per-call frame, then references the method's entry
// slot, taking the page fault that drives the kernel's call handler.
// The frame's token rides in the trap frame, so the handler resolves
// this call's frame no matter how many calls are in flight on the
// same page. out, when non-nil, is the caller's result buffer,
// threaded through the frame so the target's results land in it
// without an allocation.
//
//paramecium:hotpath
func (e *entryIface) fault(md *obj.MethodDecl, th obj.MethodHandle, args, out []any) ([]any, error) {
	p := e.proxy
	if p.closed.Load() {
		return nil, ErrClosed
	}
	fr := newFrame(th, args, out)
	token := p.factory.frames.put(fr)
	// Deferred so a panicking target method cannot leak the table
	// entry: by the time the defer runs, nothing references the frame.
	defer func() {
		p.factory.frames.drop(token)
		putFrame(fr)
	}()

	// Touch the entry slot: unmapped, so this page-faults into the
	// kernel, whose per-page handler performs the actual invocation.
	// The call claims a virtual CPU for its duration: its entry-page
	// translation, crossing charges and any flush-on-switch TLB loss
	// all land on that CPU, so concurrent calls on distinct CPUs keep
	// disjoint TLB state — per-CPU locality is measurable, not just
	// switch counts.
	slotVA := e.pageVA + mmu.VAddr(md.Slot()*8)
	machine := p.factory.svc.Machine()
	lease := machine.AcquireCPU()
	_ = lease.CPU().TouchTagged(p.callerCtx, slotVA, mmu.AccessExec, token)
	lease.Release()

	if !fr.done {
		// The handler never saw the call. Either the proxy was closed
		// (its fault handler unregistered) between the closed check
		// and the touch, or the fault genuinely went astray.
		if p.closed.Load() {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: %q.%s", ErrNoDelivery, e.target.Decl().Name, md.Name)
	}
	p.calls.Add(1)
	p.crossings.Add(1)
	return fr.res, fr.err
}

// handleFault is the per-page fault handler: the kernel half of the
// cross-domain call. It maps in the arguments (charged as word
// copies), switches to the target's context, invokes the real method
// through the frame's pre-resolved handle, switches back, and copies
// out the results. The handler is reentrant: concurrent faults on the
// same entry page dispatch independently, each finding its own frame
// by the trap frame's token. A frame carrying a batch executes every
// entry inside the one crossing (executeBatch).
//
//paramecium:hotpath
func (e *entryIface) handleFault(f *hw.TrapFrame) bool {
	p := e.proxy
	// Entered before the closed-check so Close can quiesce: if closed
	// is observed set here, the handler touches nothing of the target.
	p.inflight.Add(1)
	defer p.exitHandler()
	if p.closed.Load() {
		return false
	}
	call := p.factory.frames.get(f.Token)
	if call == nil {
		// A stray touch of the entry page (not a proxy call): leave
		// the fault unresolved.
		return false
	}
	machine := p.factory.svc.Machine()
	meter := machine.Meter

	if call.batch != nil {
		p.executeBatch(f, call, machine.MMU, meter)
		return false
	}

	// Validate any grant capabilities among the arguments before
	// paying for anything: a grant that is forged, revoked, or not
	// addressed to the target fails the call with no copy or crossing
	// charged — the kernel rejects bad capability words at decode.
	if err := p.checkGrantArgs(call.args); err != nil {
		call.err = err
		call.done = true
		return false
	}

	// Map in arguments. A shared-memory grant crosses as a single
	// capability word (wordsOf charges its 8 bytes like any scalar):
	// the segment's payload never touches the invocation plane. The
	// caller pays every invocation-plane charge of its own crossing.
	meter.ChargeNFor(uint32(p.callerCtx), clock.OpCopyWord, wordsOf(call.args))

	// The call runs in the caller's domain and crosses into the
	// target's: one switch there, one back. Each leg is validated and
	// charged by CrossSwitchOn against the calling CPU (the one the
	// fault was taken on, carried in the trap frame) without touching
	// any CPU's context register — every in-flight call is its own
	// virtual processor, so concurrent calls never observe each
	// other's transient context and the switch charges are
	// deterministic.
	crossing := p.callerCtx != p.targetCtx
	if crossing {
		if probe.Enabled() {
			meter.Emit(int(f.CPU), probe.KindCrossingBegin, uint32(p.callerCtx), uint64(p.targetCtx), 1)
		}
		if err := machine.MMU.CrossSwitchOn(f.CPU, p.targetCtx); err != nil {
			call.err = fmt.Errorf("proxy: target domain gone: %w", err)
			call.done = true
			return false
		}
	}
	call.res, call.err = call.th.CallInto(call.out, call.args...)
	if crossing {
		if err := machine.MMU.CrossSwitchOn(f.CPU, p.callerCtx); err != nil {
			// The caller's domain was destroyed while the call was in
			// flight; there is no context to return to. Surface it
			// alongside any error the target itself returned.
			call.err = errors.Join(call.err, fmt.Errorf("proxy: caller domain gone: %w", err))
		}
		if probe.Enabled() {
			meter.Emit(int(f.CPU), probe.KindCrossingEnd, uint32(p.callerCtx), uint64(p.targetCtx), 1)
		}
	}

	// Return values are handled similarly. call.res is the caller's
	// buffer plus the method's results; only the results crossed the
	// boundary, so only they are charged (on error res is nil).
	copied := call.res
	if n := len(call.out); n > 0 && len(copied) >= n {
		copied = copied[n:]
	}
	meter.ChargeNFor(uint32(p.callerCtx), clock.OpCopyWord, wordsOf(copied))
	call.done = true
	// The entry page stays unmapped (the next call must fault again),
	// so the fault is reported as unresolved; fault picks the results
	// out of the call frame.
	return false
}

// executeBatch is the kernel half of a vectored call: inside the one
// crossing the fault already paid for, it switches to the target's
// context once, dispatches every entry through its pre-resolved
// handle — charging the argument/result copies exactly as a single
// call would, plus the small per-entry decode cost — and switches
// back once. A failing entry records its error and the rest still
// run; only a dead target context fails the group as a whole.
//
//paramecium:hotpath
func (p *Proxy) executeBatch(f *hw.TrapFrame, call *callFrame, mm *mmu.MMU, meter *clock.Meter) {
	crossing := p.callerCtx != p.targetCtx
	if probe.Enabled() {
		meter.Emit(int(f.CPU), probe.KindBatchDispatch, uint32(p.callerCtx), uint64(len(call.batch)), uint64(call.mode))
		if crossing {
			meter.Emit(int(f.CPU), probe.KindCrossingBegin, uint32(p.callerCtx), uint64(p.targetCtx), uint64(len(call.batch)))
		}
	}
	if crossing {
		if err := mm.CrossSwitchOn(f.CPU, p.targetCtx); err != nil {
			err = fmt.Errorf("proxy: target domain gone: %w", err)
			for i := range call.batch {
				call.batch[i].SetResult(nil, err)
			}
			call.err = err
			call.done = true
			return
		}
	}
	for i := range call.batch {
		bc := &call.batch[i]
		key, ok := bc.Key().(batchKey)
		if !ok {
			// A hand-built handle smuggled into the group: fail the
			// entry, never panic inside the fault handler.
			bc.SetResult(nil, errors.New("proxy: batch entry not resolved through this proxy"))
			continue
		}
		if err := p.checkGrantArgs(bc.Args()); err != nil {
			// A bad grant capability fails only its own entry, exactly
			// like a failing method; nothing of it was charged.
			bc.SetResult(nil, err)
			continue
		}
		meter.ChargeFor(uint32(p.callerCtx), clock.OpBatchEntry)
		meter.ChargeNFor(uint32(p.callerCtx), clock.OpCopyWord, wordsOf(bc.Args()))
		// Dispatch through the entry's caller-provided result buffer
		// when one was supplied (Batch.AddInto): the target's results
		// land in caller-owned storage, keeping the steady-state
		// vectored plane allocation-free. Only the appended results
		// crossed the boundary, so only they are charged.
		var res []any
		var err error
		if out := bc.Out(); out != nil {
			res, err = key.th.CallInto(out, bc.Args()...)
			copied := res
			if n := len(out); n > 0 && len(copied) >= n {
				copied = copied[n:]
			}
			meter.ChargeNFor(uint32(p.callerCtx), clock.OpCopyWord, wordsOf(copied))
		} else {
			res, err = key.th.Call(bc.Args()...)
			meter.ChargeNFor(uint32(p.callerCtx), clock.OpCopyWord, wordsOf(res))
		}
		bc.SetResult(res, err)
	}
	if crossing {
		if err := mm.CrossSwitchOn(f.CPU, p.callerCtx); err != nil {
			// No caller context to return to; the per-entry results
			// stand, and the group-level error reports the lost return
			// leg exactly as a single call would.
			call.err = fmt.Errorf("proxy: caller domain gone: %w", err)
		}
		if probe.Enabled() {
			meter.Emit(int(f.CPU), probe.KindCrossingEnd, uint32(p.callerCtx), uint64(p.targetCtx), uint64(len(call.batch)))
		}
	}
	call.done = true
}

// exitHandler decrements the in-flight handler count, waking Close
// callers draining the proxy when the last handler leaves. Taking
// drainMu around the broadcast pairs with the counter re-check under
// the same mutex in Close, so a wakeup cannot slip between a waiter's
// check and its wait.
func (p *Proxy) exitHandler() {
	if p.inflight.Add(-1) == 0 && p.closed.Load() {
		p.drainMu.Lock()
		p.drainCv.Broadcast()
		p.drainMu.Unlock()
	}
}

// wordsOf estimates the 8-byte words needed to carry a value list
// across domains.
func wordsOf(vals []any) uint64 {
	var bytes uint64
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			bytes += 8
		case string:
			bytes += uint64(len(x)) + 8
		case []byte:
			bytes += uint64(len(x)) + 8
		case []any:
			bytes += 8 * uint64(len(x))
		default:
			bytes += 8
		}
	}
	return (bytes + 7) / 8
}

var _ obj.Instance = (*Proxy)(nil)
var _ obj.Invoker = (*entryIface)(nil)
var _ obj.Batcher = (*Proxy)(nil)
