package netstack

import (
	"errors"
	"fmt"

	"paramecium/internal/clock"
	"paramecium/internal/sandbox"
)

// Filter is the packet-filter attach point of the shared stack: an
// application-supplied predicate consulted for every received frame.
// This is the paper's "application components for fast protocol
// processing" inserted "into a shared network device driver".
type Filter interface {
	Name() string
	// Accept reports whether the frame should be processed further.
	Accept(frame []byte) (bool, error)
}

// FilterFunc adapts a Go function — the form a trusted, certified
// native component takes in this reproduction.
type FilterFunc struct {
	FName string
	Fn    func(frame []byte) bool
}

// Name implements Filter.
func (f FilterFunc) Name() string { return f.FName }

// Accept implements Filter.
func (f FilterFunc) Accept(frame []byte) (bool, error) { return f.Fn(frame), nil }

// Filter ABI for PVM filter programs: the data segment starts with the
// frame length as a big-endian 16-bit word at offset 0, followed by
// the frame bytes at offset FilterFrameOffset. The program halts with
// a non-zero value to accept the frame.
const (
	// FilterLenOffset is the segment offset of the 16-bit frame length.
	FilterLenOffset = 0
	// FilterFrameOffset is the segment offset of the frame bytes.
	FilterFrameOffset = 2
	// FilterSegSize is the (power-of-two) segment size given to filter
	// programs; frames larger than FilterSegSize-FilterFrameOffset are
	// truncated for inspection purposes.
	FilterSegSize = 4096
)

// ErrFilterFailed wraps execution failures of a PVM filter.
var ErrFilterFailed = errors.New("netstack: filter execution failed")

// PVMFilter runs a PVM program per frame. With Sandboxed set, the
// program is the SFI-rewritten form and runs with enforcement (the
// Exokernel/SPIN-style placement); otherwise it runs check-free (the
// certified placement).
type PVMFilter struct {
	FName     string
	Prog      sandbox.Program
	Meter     *clock.Meter
	Sandboxed bool
	Fuel      uint64

	seg [FilterSegSize]byte
}

// NewCertifiedFilter builds a check-free filter from a source program.
func NewCertifiedFilter(name string, prog sandbox.Program, meter *clock.Meter) (*PVMFilter, error) {
	if err := sandbox.Verify(prog); err != nil {
		return nil, err
	}
	return &PVMFilter{FName: name, Prog: prog, Meter: meter}, nil
}

// NewSandboxedFilter builds an SFI-enforced filter: the program is
// rewritten with address-masking checks first.
func NewSandboxedFilter(name string, prog sandbox.Program, meter *clock.Meter) (*PVMFilter, error) {
	rewritten, err := sandbox.Rewrite(prog)
	if err != nil {
		return nil, err
	}
	return &PVMFilter{FName: name, Prog: rewritten, Meter: meter, Sandboxed: true}, nil
}

// Name implements Filter.
func (p *PVMFilter) Name() string { return p.FName }

// Accept implements Filter.
func (p *PVMFilter) Accept(frame []byte) (bool, error) {
	n := len(frame)
	if n > FilterSegSize-FilterFrameOffset {
		n = FilterSegSize - FilterFrameOffset
	}
	p.seg[0] = byte(n >> 8)
	p.seg[1] = byte(n)
	copy(p.seg[FilterFrameOffset:], frame[:n])
	// Zero the tail so a filter cannot observe previous frames (the
	// snooping concern is about *other users'* traffic, which a
	// shared filter must never see).
	for i := FilterFrameOffset + n; i < FilterSegSize; i++ {
		p.seg[i] = 0
	}
	e := sandbox.Exec{Meter: p.Meter, Fuel: p.Fuel, EnforceSandbox: p.Sandboxed}
	res, err := e.Run(p.Prog, p.seg[:])
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrFilterFailed, err)
	}
	return res.Ret != 0, nil
}

// AcceptAllProgram is a trivial filter program accepting every frame.
const AcceptAllProgram = `
        loadi r0, 1
        halt  r0
`

// PortFilterProgram returns the source of a filter accepting UDP
// datagrams addressed to the given port and rejecting everything
// else. It parses the real wire format: Ethernet ethertype, IP-lite
// protocol, UDP destination port.
func PortFilterProgram(port uint16) string {
	// Segment layout: [0:2] frame len, [2:] frame.
	// Frame layout:   eth header 14 (ethertype at 12),
	//                 ip header 12 (proto at 0), udp dst port at +2.
	return fmt.Sprintf(`
        ; r1 = frame length
        ld16  r1, [r0+%d]
        loadi r2, %d            ; minimum parseable length
        jlt   r1, r2, drop
        ld16  r3, [r0+%d]       ; ethertype
        loadi r4, %d
        jne   r3, r4, drop
        ld8   r5, [r0+%d]       ; ip proto
        loadi r6, %d
        jne   r5, r6, drop
        ld16  r7, [r0+%d]       ; udp dst port
        loadi r8, %d
        jne   r7, r8, drop
        loadi r0, 1
        halt  r0
drop:   loadi r0, 0
        halt  r0
`,
		FilterLenOffset,
		EthHeaderLen+IPHeaderLen+UDPHeaderLen,
		FilterFrameOffset+12,
		EtherTypeIP,
		FilterFrameOffset+EthHeaderLen,
		ProtoUDP,
		FilterFrameOffset+EthHeaderLen+IPHeaderLen+2,
		port,
	)
}

// WorkFilterProgram returns a filter that, in addition to the port
// check, performs extra per-frame work: it sums `loops` bytes of the
// payload (a stand-in for checksum/decryption work). Used by the
// break-even experiment F2 to scale filter complexity.
func WorkFilterProgram(port uint16, loops int) string {
	return fmt.Sprintf(`
        ld16  r1, [r0+%d]       ; frame length (unused bound)
        ld16  r7, [r0+%d]       ; udp dst port
        loadi r8, %d
        jne   r7, r8, drop
        ; checksum-ish loop over the first %d bytes of the frame
        loadi r2, %d            ; index
        loadi r3, %d            ; limit
        loadi r4, 0             ; sum
        loadi r6, 1
loop:   jge   r2, r3, accept
        ld8   r5, [r2+0]
        add   r4, r4, r5
        add   r2, r2, r6
        jmp   loop
accept: loadi r0, 1
        halt  r0
drop:   loadi r0, 0
        halt  r0
`,
		FilterLenOffset,
		FilterFrameOffset+EthHeaderLen+IPHeaderLen+2,
		port,
		loops,
		FilterFrameOffset,
		FilterFrameOffset+loops,
	)
}
