package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeSafe polices the flight-recorder emission discipline. The probe
// package's whole bargain is that a disabled recorder costs one atomic
// load: every Emit call site — Recorder.Emit or the Meter.Emit wrapper
// — must therefore be reachable only under the package-level enable
// gate, either inside an `if probe.Enabled() { ... }` block or after a
// leading `if !probe.Enabled() { return }` early exit, so the argument
// expressions are never even evaluated on the disabled path. The same
// sites must not allocate: an argument built from a composite literal,
// make/new/append, or string concatenation would put an allocation on
// a //paramecium:hotpath emit site and trip the -allocgate bench gate.
var ProbeSafe = &Analyzer{
	Name: "probesafe",
	Doc:  "flight-recorder emission must sit under the probe enable gate and not allocate",
	Run:  runProbeSafe,
}

func runProbeSafe(pass *Pass) error {
	// The probe package itself is the mechanism below the gate: its
	// Recorder.Emit body runs only because a gated caller invoked it.
	if pass.Pkg.Path() == "paramecium/internal/probe" {
		return nil
	}
	ps := &probeSafe{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ps.checkBlock(fn.Body.List, false)
		}
	}
	return nil
}

type probeSafe struct {
	pass *Pass
}

// isEnabledCall matches a call of the gate predicate: probe.Enabled()
// or a local Enabled() in the golden suite.
func isEnabledCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Enabled"
	case *ast.Ident:
		return fun.Name == "Enabled"
	}
	return false
}

// guardsEnabled reports whether the condition establishes the gate in
// its then-branch: Enabled() appears positively (possibly as one
// conjunct of &&, whose short-circuit makes the branch gated).
func guardsEnabled(cond ast.Expr) bool {
	switch cond := cond.(type) {
	case *ast.CallExpr:
		return isEnabledCall(cond)
	case *ast.ParenExpr:
		return guardsEnabled(cond.X)
	case *ast.BinaryExpr:
		if cond.Op == token.LAND {
			return guardsEnabled(cond.X) || guardsEnabled(cond.Y)
		}
	}
	return false
}

// isNegatedEnabled matches `!Enabled()` — the early-return guard form.
func isNegatedEnabled(cond ast.Expr) bool {
	u, ok := cond.(*ast.UnaryExpr)
	return ok && u.Op == token.NOT && isEnabledCall(u.X)
}

// isEmit matches an emission call: method Emit on the Meter or
// Recorder named types.
func (ps *probeSafe) isEmit(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return false
	}
	switch namedTypeName(ps.pass.TypesInfo.TypeOf(sel.X)) {
	case "Meter", "Recorder":
		return true
	}
	return false
}

// checkExpr scans one expression tree for emission calls, reporting
// ungated ones and allocating arguments. Function literals restart
// ungated: the literal may be invoked long after the enclosing guard.
func (ps *probeSafe) checkExpr(n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ps.checkBlock(n.Body.List, false)
			return false
		case *ast.CallExpr:
			if !ps.isEmit(n) {
				return true
			}
			if !guarded {
				ps.pass.Reportf(n.Pos(), "Emit call site is not under the probe enable gate; wrap it in `if probe.Enabled() { ... }` so disabled tracing stays a single atomic load")
			}
			for _, arg := range n.Args {
				ps.checkArg(arg)
			}
		}
		return true
	})
}

// checkArg flags argument expressions that allocate: the emit path is
// hot and must stay allocation-free even when the gate is open.
func (ps *probeSafe) checkArg(arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			ps.pass.Reportf(n.Pos(), "Emit argument builds a composite literal, which allocates on the emit hot path; precompute it outside the event")
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := ps.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						ps.pass.Reportf(n.Pos(), "Emit argument calls %s, which allocates on the emit hot path", b.Name())
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(ps.pass.TypesInfo.TypeOf(n)) {
				ps.pass.Reportf(n.Pos(), "Emit argument concatenates strings, which allocates on the emit hot path")
			}
		}
		return true
	})
}

// checkBlock walks statements sequentially, tracking whether the gate
// covers each point: a positive guard gates its then-branch, and a
// `if !Enabled() { return }` early exit gates everything after it.
func (ps *probeSafe) checkBlock(stmts []ast.Stmt, guarded bool) {
	for _, s := range stmts {
		guarded = ps.checkStmt(s, guarded)
	}
}

func (ps *probeSafe) checkStmt(s ast.Stmt, guarded bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		ps.checkStmt(s.Init, guarded)
		ps.checkExpr(s.Cond, guarded)
		thenGuarded := guarded || guardsEnabled(s.Cond)
		ps.checkBlock(s.Body.List, thenGuarded)
		if s.Else != nil {
			ps.checkStmt(s.Else, guarded)
		}
		if isNegatedEnabled(s.Cond) && terminates(s.Body.List) {
			return true
		}
		return guarded
	case *ast.BlockStmt:
		ps.checkBlock(s.List, guarded)
		return guarded
	case *ast.ForStmt:
		ps.checkStmt(s.Init, guarded)
		ps.checkExpr(s.Cond, guarded)
		ps.checkBlock(s.Body.List, guarded)
		ps.checkStmt(s.Post, guarded)
		return guarded
	case *ast.RangeStmt:
		ps.checkExpr(s.X, guarded)
		ps.checkBlock(s.Body.List, guarded)
		return guarded
	case *ast.SwitchStmt:
		ps.checkStmt(s.Init, guarded)
		ps.checkExpr(s.Tag, guarded)
		for _, c := range s.Body.List {
			ps.checkBlock(c.(*ast.CaseClause).Body, guarded)
		}
		return guarded
	case *ast.TypeSwitchStmt:
		ps.checkStmt(s.Init, guarded)
		for _, c := range s.Body.List {
			ps.checkBlock(c.(*ast.CaseClause).Body, guarded)
		}
		return guarded
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			ps.checkBlock(c.(*ast.CommClause).Body, guarded)
		}
		return guarded
	case *ast.DeferStmt:
		// A deferred emit runs at return, when the guard that covered
		// the defer statement may no longer describe the gate; require
		// the gate inside the deferred expression itself.
		ps.checkExpr(s.Call, false)
		return guarded
	case *ast.GoStmt:
		ps.checkExpr(s.Call, false)
		return guarded
	case *ast.LabeledStmt:
		return ps.checkStmt(s.Stmt, guarded)
	case nil:
		return guarded
	default:
		ps.checkExpr(s, guarded)
		return guarded
	}
}
