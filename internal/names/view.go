package names

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// View is an object's window onto the name space. "The name space is
// usually inherited from a parent, i.e., the object that created it.
// Each object, however, can provide a set of overrides which allows it
// to locally reconfigure its name space: that is, control the child
// objects it will import."
//
// A View resolves a path by consulting, in order: its own override set
// (instance overrides and aliases), then its parent view, and finally
// the global Space at the root of the chain.
//
// The override set is copy-on-write, mirroring Space: a probe loads an
// atomically published immutable snapshot and takes no lock at all, so
// binds through arbitrarily deep view chains are lock-free end to end.
// Mutations serialize on a writer lock, clone the set, and publish.
type View struct {
	space  *Space
	parent *View
	meter  *clock.Meter

	wmu sync.Mutex                  // serializes override mutations
	ovr atomic.Pointer[overrideSet] // current published snapshot
}

// overrideSet is one immutable snapshot of a view's local
// reconfiguration. Once published via View.ovr it is never mutated;
// writers clone it.
type overrideSet struct {
	overrides map[string]obj.Instance // canonical path -> instance
	aliases   map[string]string       // canonical path -> canonical path
}

var emptyOverrides = &overrideSet{}

// clone duplicates the set for a mutation, leaving room for one more
// entry.
func (os *overrideSet) clone() *overrideSet {
	ns := &overrideSet{
		overrides: make(map[string]obj.Instance, len(os.overrides)+1),
		aliases:   make(map[string]string, len(os.aliases)+1),
	}
	for k, v := range os.overrides {
		ns.overrides[k] = v
	}
	for k, v := range os.aliases {
		ns.aliases[k] = v
	}
	return ns
}

// RootView builds the top-level view over a space.
func RootView(space *Space) *View {
	v := &View{space: space, meter: space.meter}
	v.ovr.Store(emptyOverrides)
	return v
}

// Child derives a view that inherits this one. The child starts with
// no overrides of its own.
func (v *View) Child() *View {
	c := &View{space: v.space, parent: v, meter: v.meter}
	c.ovr.Store(emptyOverrides)
	return c
}

// mutate clones the current override set, applies fn, and publishes
// the result; fn returning an error publishes nothing.
func (v *View) mutate(fn func(*overrideSet) error) error {
	v.wmu.Lock()
	defer v.wmu.Unlock()
	ns := v.ovr.Load().clone()
	if err := fn(ns); err != nil {
		return err
	}
	v.ovr.Store(ns)
	return nil
}

// Override makes path resolve to inst in this view (and views derived
// from it), without touching the global space or sibling views.
func (v *View) Override(path string, inst obj.Instance) error {
	if inst == nil {
		return fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	c, err := Clean(path)
	if err != nil {
		return err
	}
	if c == "/" {
		return fmt.Errorf("%w: cannot override root", ErrBadPath)
	}
	return v.mutate(func(os *overrideSet) error {
		os.overrides[c] = inst
		return nil
	})
}

// Alias redirects lookups of from to to (both resolved in this view's
// parent chain). Aliases let a parent steer a child at a different
// implementation that is already registered elsewhere, e.g.
// "/services/net" -> "/services/net-debug".
func (v *View) Alias(from, to string) error {
	cf, err := Clean(from)
	if err != nil {
		return err
	}
	ct, err := Clean(to)
	if err != nil {
		return err
	}
	if cf == ct {
		return fmt.Errorf("%w: alias %q to itself", ErrBadPath, cf)
	}
	return v.mutate(func(os *overrideSet) error {
		os.aliases[cf] = ct
		return nil
	})
}

// ClearOverride removes an override or alias for path in this view.
func (v *View) ClearOverride(path string) error {
	c, err := Clean(path)
	if err != nil {
		return err
	}
	return v.mutate(func(os *overrideSet) error {
		if _, ok := os.overrides[c]; ok {
			delete(os.overrides, c)
			return nil
		}
		if _, ok := os.aliases[c]; ok {
			delete(os.aliases, c)
			return nil
		}
		return fmt.Errorf("%w: no override for %q", ErrNotFound, c)
	})
}

// SweepInstances removes every override whose instance satisfies
// doomed. Domain teardown uses it so a view override pinned on a dead
// domain's object fails future binds (falling through to the — also
// swept — global space) instead of silently resolving placement-less
// to the orphaned object. Aliases are untouched: they redirect to
// paths, and the paths themselves fail after the sweep.
func (v *View) SweepInstances(doomed func(obj.Instance) bool) {
	v.wmu.Lock()
	defer v.wmu.Unlock()
	os := v.ovr.Load()
	hit := false
	for _, inst := range os.overrides {
		if doomed(inst) {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	ns := os.clone()
	for p, inst := range ns.overrides {
		if doomed(inst) {
			delete(ns.overrides, p)
		}
	}
	v.ovr.Store(ns)
}

// Overrides lists the paths overridden (directly or via alias) in this
// view, sorted.
func (v *View) Overrides() []string {
	os := v.ovr.Load()
	out := make([]string, 0, len(os.overrides)+len(os.aliases))
	for p := range os.overrides {
		out = append(out, p)
	}
	for p := range os.aliases {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Bind resolves path through the override chain. Alias chains are
// followed up to a fixed depth to keep cyclic configurations from
// hanging the system.
func (v *View) Bind(path string) (obj.Instance, error) {
	c, err := Clean(path)
	if err != nil {
		return nil, err
	}
	const maxAliasDepth = 16
	for hop := 0; hop < maxAliasDepth; hop++ {
		inst, redirect, err := v.resolveOnce(c)
		if err != nil {
			return nil, err
		}
		if inst != nil {
			return inst, nil
		}
		c = redirect
	}
	return nil, fmt.Errorf("%w: alias chain too deep at %q", ErrBadPath, path)
}

// resolveOnce walks the view chain for one canonical path. It returns
// either the bound instance, or a redirect target to retry with. Each
// probe loads the view's published snapshot — no lock anywhere on the
// chain, matching the lock-free Space walk at its root.
func (v *View) resolveOnce(c string) (obj.Instance, string, error) {
	for w := v; w != nil; w = w.parent {
		os := w.ovr.Load()
		if inst, ok := os.overrides[c]; ok {
			// Override hits cost one hop regardless of depth: the
			// binding is immediate.
			if v.meter != nil {
				v.meter.Charge(clock.OpNameLookupHop)
			}
			return inst, "", nil
		}
		if target, ok := os.aliases[c]; ok {
			if v.meter != nil {
				v.meter.Charge(clock.OpNameLookupHop)
			}
			return nil, target, nil
		}
	}
	inst, err := v.space.Bind(c)
	if err != nil {
		return nil, "", err
	}
	return inst, "", nil
}

// BindInterface is the common bind-then-get-interface sequence: it
// resolves path and returns the named interface of the instance.
func (v *View) BindInterface(path, ifaceName string) (obj.Invoker, error) {
	inst, err := v.Bind(path)
	if err != nil {
		return nil, err
	}
	iv, ok := inst.Iface(ifaceName)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", obj.ErrNoInterface, ifaceName, path)
	}
	return iv, nil
}

// ResolveMethod is the full late-binding sequence collapsed to one
// call: resolve path, select the interface, and pre-bind the method.
// The returned handle keeps no reference to the view, so later
// overrides affect future resolutions only — exactly the paper's
// handle-replacement semantics.
func (v *View) ResolveMethod(path, ifaceName, method string) (obj.MethodHandle, error) {
	iv, err := v.BindInterface(path, ifaceName)
	if err != nil {
		return obj.MethodHandle{}, err
	}
	return iv.Resolve(method)
}

// Space returns the global space underlying this view.
func (v *View) Space() *Space { return v.space }
