package obj

import "fmt"

// MethodHandle is a pre-resolved method binding: the bind-once /
// invoke-many pattern the paper's late binding implies. A handle is
// obtained from Invoker.Resolve; its Call dispatches by slot index
// with no per-call name lookup or lock. Handles stay live through
// rebinding — a slot rebound after Resolve is observed by the next
// Call, exactly as a string-keyed Invoke would observe it.
//
// The zero MethodHandle is invalid; Call on it fails.
type MethodHandle struct {
	decl *MethodDecl
	call Method
	// into is the buffer-threading dispatch form: results are appended
	// to a caller-provided slice, so a method bound with BindInto and
	// called with CallInto completes without allocating. Nil for
	// Invoker implementations that only supply a plain dispatch.
	into MethodInto
	// batcher, when non-nil, can execute a group of calls through this
	// handle (and its siblings) in one protection crossing; bkey is the
	// batcher-private per-handle routing key. See Batch.
	batcher Batcher
	bkey    any
}

// NewMethodHandle builds a handle from a declaration and a dispatch
// function. It is intended for Invoker implementations (interposers,
// cross-domain proxies) that supply their own dispatch path; dispatch
// receives the arguments exactly as passed to Call, after arity
// validation.
func NewMethodHandle(decl *MethodDecl, dispatch Method) MethodHandle {
	if decl == nil || dispatch == nil {
		return MethodHandle{}
	}
	return MethodHandle{decl: decl, call: dispatch}
}

// NewBatchableHandle is NewMethodHandle for Invoker implementations
// that can also execute grouped calls in one crossing: into (optional)
// is the buffer-threading dispatch form, batcher executes batch groups
// and key is the batcher's private routing key for this handle.
func NewBatchableHandle(decl *MethodDecl, dispatch Method, into MethodInto, batcher Batcher, key any) MethodHandle {
	if decl == nil || dispatch == nil {
		return MethodHandle{}
	}
	return MethodHandle{decl: decl, call: dispatch, into: into, batcher: batcher, bkey: key}
}

// Valid reports whether the handle is usable.
func (h MethodHandle) Valid() bool { return h.call != nil }

// Decl returns the type information of the resolved method.
func (h MethodHandle) Decl() *MethodDecl { return h.decl }

// Call invokes the resolved method. It validates argument arity
// before dispatch and result arity after a successful return, using
// the declaration captured at resolve time.
func (h MethodHandle) Call(args ...any) ([]any, error) {
	if h.call == nil {
		return nil, fmt.Errorf("%w: call through zero method handle", ErrUnbound)
	}
	if err := CheckArity(h.decl, args); err != nil {
		return nil, err
	}
	res, err := h.call(args...)
	if err != nil {
		return nil, err
	}
	if err := CheckResults(h.decl, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CallInto is Call with a caller-provided result buffer: results are
// appended to out (typically a zero-length slice over a reused or
// stack array) and the extended slice is returned. When the bound
// implementation supports the buffer-threading form (BindInto), the
// whole invocation — dispatch, method body, results — completes
// without allocating; implementations that don't are dispatched
// normally and their results appended to out afterwards. Either way
// the returned slice is out plus exactly the method's results; treat
// it like any append result — valid only until out's array is reused.
//
//paramecium:hotpath
func (h MethodHandle) CallInto(out []any, args ...any) ([]any, error) {
	if h.into == nil {
		res, err := h.Call(args...)
		if err != nil || len(out) == 0 {
			return res, err
		}
		//paralint:ignore hotpathalloc compat path for bindings without BindInto; res is already their allocation
		return append(out, res...), nil
	}
	if err := CheckArity(h.decl, args); err != nil {
		return nil, err
	}
	res, err := h.into(out, args...)
	if err != nil {
		return nil, err
	}
	if len(res) < len(out) {
		return nil, fmt.Errorf("%w: %s shrank the result buffer", ErrArity, h.decl.Name)
	}
	if err := CheckResults(h.decl, res[len(out):]); err != nil {
		return nil, err
	}
	return res, nil
}
