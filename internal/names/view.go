package names

import (
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// View is an object's window onto the name space. "The name space is
// usually inherited from a parent, i.e., the object that created it.
// Each object, however, can provide a set of overrides which allows it
// to locally reconfigure its name space: that is, control the child
// objects it will import."
//
// A View resolves a path by consulting, in order: its own override set
// (instance overrides and aliases), then its parent view, and finally
// the global Space at the root of the chain.
type View struct {
	space  *Space
	parent *View
	meter  *clock.Meter

	mu        sync.RWMutex
	overrides map[string]obj.Instance // canonical path -> instance
	aliases   map[string]string       // canonical path -> canonical path
}

// RootView builds the top-level view over a space.
func RootView(space *Space) *View {
	return &View{space: space, meter: space.meter,
		overrides: make(map[string]obj.Instance), aliases: make(map[string]string)}
}

// Child derives a view that inherits this one. The child starts with
// no overrides of its own.
func (v *View) Child() *View {
	return &View{space: v.space, parent: v, meter: v.meter,
		overrides: make(map[string]obj.Instance), aliases: make(map[string]string)}
}

// Override makes path resolve to inst in this view (and views derived
// from it), without touching the global space or sibling views.
func (v *View) Override(path string, inst obj.Instance) error {
	if inst == nil {
		return fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	c, err := Clean(path)
	if err != nil {
		return err
	}
	if c == "/" {
		return fmt.Errorf("%w: cannot override root", ErrBadPath)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.overrides[c] = inst
	return nil
}

// Alias redirects lookups of from to to (both resolved in this view's
// parent chain). Aliases let a parent steer a child at a different
// implementation that is already registered elsewhere, e.g.
// "/services/net" -> "/services/net-debug".
func (v *View) Alias(from, to string) error {
	cf, err := Clean(from)
	if err != nil {
		return err
	}
	ct, err := Clean(to)
	if err != nil {
		return err
	}
	if cf == ct {
		return fmt.Errorf("%w: alias %q to itself", ErrBadPath, cf)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.aliases[cf] = ct
	return nil
}

// ClearOverride removes an override or alias for path in this view.
func (v *View) ClearOverride(path string) error {
	c, err := Clean(path)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.overrides[c]; ok {
		delete(v.overrides, c)
		return nil
	}
	if _, ok := v.aliases[c]; ok {
		delete(v.aliases, c)
		return nil
	}
	return fmt.Errorf("%w: no override for %q", ErrNotFound, c)
}

// Overrides lists the paths overridden (directly or via alias) in this
// view, sorted.
func (v *View) Overrides() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.overrides)+len(v.aliases))
	for p := range v.overrides {
		out = append(out, p)
	}
	for p := range v.aliases {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Bind resolves path through the override chain. Alias chains are
// followed up to a fixed depth to keep cyclic configurations from
// hanging the system.
func (v *View) Bind(path string) (obj.Instance, error) {
	c, err := Clean(path)
	if err != nil {
		return nil, err
	}
	const maxAliasDepth = 16
	for hop := 0; hop < maxAliasDepth; hop++ {
		inst, redirect, err := v.resolveOnce(c)
		if err != nil {
			return nil, err
		}
		if inst != nil {
			return inst, nil
		}
		c = redirect
	}
	return nil, fmt.Errorf("%w: alias chain too deep at %q", ErrBadPath, path)
}

// resolveOnce walks the view chain for one canonical path. It returns
// either the bound instance, or a redirect target to retry with.
func (v *View) resolveOnce(c string) (obj.Instance, string, error) {
	for w := v; w != nil; w = w.parent {
		w.mu.RLock()
		inst, okO := w.overrides[c]
		target, okA := w.aliases[c]
		w.mu.RUnlock()
		if okO {
			// Override hits cost one hop regardless of depth: the
			// binding is immediate.
			if v.meter != nil {
				v.meter.Charge(clock.OpNameLookupHop)
			}
			return inst, "", nil
		}
		if okA {
			if v.meter != nil {
				v.meter.Charge(clock.OpNameLookupHop)
			}
			return nil, target, nil
		}
	}
	inst, err := v.space.Bind(c)
	if err != nil {
		return nil, "", err
	}
	return inst, "", nil
}

// BindInterface is the common bind-then-get-interface sequence: it
// resolves path and returns the named interface of the instance.
func (v *View) BindInterface(path, ifaceName string) (obj.Invoker, error) {
	inst, err := v.Bind(path)
	if err != nil {
		return nil, err
	}
	iv, ok := inst.Iface(ifaceName)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", obj.ErrNoInterface, ifaceName, path)
	}
	return iv, nil
}

// ResolveMethod is the full late-binding sequence collapsed to one
// call: resolve path, select the interface, and pre-bind the method.
// The returned handle keeps no reference to the view, so later
// overrides affect future resolutions only — exactly the paper's
// handle-replacement semantics.
func (v *View) ResolveMethod(path, ifaceName, method string) (obj.MethodHandle, error) {
	iv, err := v.BindInterface(path, ifaceName)
	if err != nil {
		return obj.MethodHandle{}, err
	}
	return iv.Resolve(method)
}

// Space returns the global space underlying this view.
func (v *View) Space() *Space { return v.space }
