package shm

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
)

func newTestRegistry(t *testing.T, cpus int) (*Registry, *mem.Service, *hw.Machine) {
	t.Helper()
	machine := hw.New(hw.Config{PhysFrames: 128, CPUs: cpus})
	svc := mem.New(machine)
	return NewRegistry(svc), svc, machine
}

func TestSegmentLifecycle(t *testing.T) {
	reg, svc, machine := newTestRegistry(t, 1)
	owner := svc.NewDomain()
	grantee := svc.NewDomain()

	freeBefore := machine.Phys.FreeFrames()
	seg, err := reg.NewSegment(owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Size() != 2*mmu.PageSize {
		t.Fatalf("Size = %d, want %d", seg.Size(), 2*mmu.PageSize)
	}
	payload := []byte("zero-copy bulk data")
	if err := seg.Store(100, payload); err != nil {
		t.Fatal(err)
	}

	g, err := seg.Grant(grantee, RO)
	if err != nil {
		t.Fatal(err)
	}
	if g.Ref() == 0 {
		t.Fatal("grant ref is the reserved zero value")
	}
	att, err := reg.Attach(g.Ref())
	if err != nil {
		t.Fatal(err)
	}
	// Re-attach is idempotent: same mapping, no second set of pages.
	att2, err := reg.Attach(g.Ref())
	if err != nil || att2 != att {
		t.Fatalf("re-attach = (%v, %v), want the original attachment", att2, err)
	}

	// The grantee reads the owner's bytes through its own context:
	// the frames are shared, nothing was copied.
	got := make([]byte, len(payload))
	if err := att.Load(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("grantee read %q, want %q", got, payload)
	}
	// Frames are refcounted: owner + grantee.
	frame, ok := svc.Frame(owner, seg.Base())
	if !ok {
		t.Fatal("owner page not managed")
	}
	if rc := machine.Phys.RefCount(frame); rc != 2 {
		t.Fatalf("shared frame refcount = %d, want 2", rc)
	}

	// RO attachment refuses stores before touching the MMU.
	if err := att.Store(0, []byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("store through RO attachment = %v, want ErrReadOnly", err)
	}

	// An RW grant makes grantee writes visible to the owner.
	g2, err := seg.Grant(grantee, RW)
	if err != nil {
		t.Fatal(err)
	}
	att3, err := reg.Attach(g2.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if err := att3.Store(mmu.PageSize+8, []byte("written by grantee")); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 18)
	if err := seg.Load(mmu.PageSize+8, back); err != nil {
		t.Fatal(err)
	}
	if string(back) != "written by grantee" {
		t.Fatalf("owner read %q after grantee store", back)
	}

	// Bounds are enforced.
	if err := att.Load(seg.Size()-4, make([]byte, 8)); !errors.Is(err, ErrBounds) {
		t.Fatalf("out-of-bounds load = %v, want ErrBounds", err)
	}

	// Destroy revokes every grant and releases every frame.
	if err := seg.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := att.Load(0, got); !errors.Is(err, ErrRevoked) {
		t.Fatalf("load after destroy = %v, want ErrRevoked", err)
	}
	if free := machine.Phys.FreeFrames(); free != freeBefore {
		t.Fatalf("frames leaked: %d free, want %d", free, freeBefore)
	}
	if err := seg.Destroy(); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("second destroy = %v, want ErrDestroyed", err)
	}
}

// TestSegmentScopedRefsRejectForeignGrants: Segment.Revoke and
// Segment.Attach refuse a ref issued for a DIFFERENT segment — a
// mixed-up ref must never revoke or map a grant the caller didn't
// mean to touch. (The unscoped Registry forms accept any live ref.)
func TestSegmentScopedRefsRejectForeignGrants(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner, grantee := svc.NewDomain(), svc.NewDomain()
	segA, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	segB, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	gB, err := segB.Grant(grantee, RW)
	if err != nil {
		t.Fatal(err)
	}
	if err := segA.Revoke(gB.Ref()); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("segA.Revoke(refOfB) = %v, want ErrNoGrant", err)
	}
	if _, err := segA.Attach(gB.Ref()); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("segA.Attach(refOfB) = %v, want ErrNoGrant", err)
	}
	// B's grant survived the mixed-up calls and still works through
	// its own segment.
	att, err := segB.Attach(gB.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if err := att.Store(0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := segB.Revoke(gB.Ref()); err != nil {
		t.Fatal(err)
	}
}

// TestVAReuseUnderGrantChurn: address-space reservations are recycled
// on revoke and destroy, so sustained grant churn does not march the
// arena toward the proxy entry-page region.
func TestVAReuseUnderGrantChurn(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner, grantee := svc.NewDomain(), svc.NewDomain()
	seg, err := reg.NewSegment(owner, 4)
	if err != nil {
		t.Fatal(err)
	}
	var first mmu.VAddr
	for i := 0; i < 100; i++ {
		g, err := seg.Grant(grantee, RO)
		if err != nil {
			t.Fatal(err)
		}
		att, err := reg.Attach(g.Ref())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = att.Base()
		} else if att.Base() != first {
			t.Fatalf("attach %d landed at %#x, want the recycled %#x", i, uint64(att.Base()), uint64(first))
		}
		if err := g.Revoke(); err != nil {
			t.Fatal(err)
		}
	}
	// Segment churn recycles the owner side too.
	ownerBase := seg.Base()
	if err := seg.Destroy(); err != nil {
		t.Fatal(err)
	}
	seg2, err := reg.NewSegment(owner, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Base() != ownerBase {
		t.Fatalf("new segment at %#x, want the recycled %#x", uint64(seg2.Base()), uint64(ownerBase))
	}
}

// TestConcurrentAccessDuringRevoke: copies racing a revoke either
// complete against the live mapping or fail with ErrRevoked — never a
// raw fault from a half-torn mapping, never a read of a recycled
// frame. The frames are refilled with a distinct pattern after each
// revoke; any read that returns a mix proves a copy ran against freed
// frames.
func TestConcurrentAccessDuringRevoke(t *testing.T) {
	reg, svc, machine := newTestRegistry(t, 2)
	owner, grantee := svc.NewDomain(), svc.NewDomain()
	seg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		pattern := byte(round + 1)
		if err := seg.Store(0, bytes.Repeat([]byte{pattern}, mmu.PageSize)); err != nil {
			t.Fatal(err)
		}
		g, err := seg.Grant(grantee, RO)
		if err != nil {
			t.Fatal(err)
		}
		att, err := reg.Attach(g.Ref())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, mmu.PageSize)
				for {
					err := att.Load(0, buf)
					if errors.Is(err, ErrRevoked) {
						return
					}
					if err != nil {
						t.Errorf("load raced revoke into a raw error: %v", err)
						return
					}
					for _, b := range buf {
						if b != pattern {
							t.Errorf("read byte %#x from a freed frame (want %#x)", b, pattern)
							return
						}
					}
				}
			}()
		}
		_ = g.Revoke()
		wg.Wait()
	}
	_ = machine // machine only anchors the fixture
}

func TestForgedRefFails(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner := svc.NewDomain()
	seg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(svc.NewDomain(), RO)
	if err != nil {
		t.Fatal(err)
	}
	for _, forged := range []GrantRef{0, 1, g.Ref() + 1, g.Ref() ^ 0x8000_0000_0000_0000} {
		if _, err := reg.Attach(forged); !errors.Is(err, ErrNoGrant) {
			t.Fatalf("Attach(forged %#x) = %v, want ErrNoGrant", uint64(forged), err)
		}
	}
}

func TestRevokeIsDistinctFromLookupFailure(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner, grantee := svc.NewDomain(), svc.NewDomain()
	seg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(grantee, RW)
	if err != nil {
		t.Fatal(err)
	}
	att, err := reg.Attach(g.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if err := att.Store(0, []byte{42}); err != nil {
		t.Fatal(err)
	}
	mappedBefore := svc.Machine().MMU.Mappings(grantee)

	if err := g.Revoke(); err != nil {
		t.Fatal(err)
	}
	// The grantee's mapping is gone...
	if got := svc.Machine().MMU.Mappings(grantee); got != mappedBefore-1 {
		t.Fatalf("grantee mappings = %d after revoke, want %d", got, mappedBefore-1)
	}
	// ...and every path reports the DISTINCT revocation error, not a
	// generic lookup failure.
	if err := att.Load(0, make([]byte, 1)); !errors.Is(err, ErrRevoked) {
		t.Fatalf("load after revoke = %v, want ErrRevoked", err)
	}
	if _, err := reg.Attach(g.Ref()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("re-attach after revoke = %v, want ErrRevoked", err)
	}
	if err := reg.Revoke(g.Ref()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("double revoke = %v, want ErrRevoked", err)
	}
	if err := reg.CheckDeliverable(g.Ref(), grantee); !errors.Is(err, ErrRevoked) {
		t.Fatalf("CheckDeliverable after revoke = %v, want ErrRevoked", err)
	}
	// The owner is unaffected.
	var b [1]byte
	if err := seg.Load(0, b[:]); err != nil || b[0] != 42 {
		t.Fatalf("owner load after revoke = (%v, %d), want (nil, 42)", err, b[0])
	}
}

// TestRevokePaysRemoteShootdowns attaches a segment, caches its pages
// in a REMOTE CPU's TLB, and asserts revocation charges the
// per-remote-CPU TLB shootdown: the cost model's honesty claim for the
// zero-copy plane — mapping is cheap, but yanking mappings back from a
// multiprocessor is not free.
func TestRevokePaysRemoteShootdowns(t *testing.T) {
	reg, svc, machine := newTestRegistry(t, 2)
	owner, grantee := svc.NewDomain(), svc.NewDomain()
	seg, err := reg.NewSegment(owner, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(grantee, RO)
	if err != nil {
		t.Fatal(err)
	}
	att, err := reg.Attach(g.Ref())
	if err != nil {
		t.Fatal(err)
	}
	// CPU 1 reads both pages of the attachment, caching them in its
	// own TLB; the revoke below initiates from the boot CPU, so both
	// entries are remote.
	var buf [8]byte
	for p := 0; p < 2; p++ {
		va := att.Base() + mmu.VAddr(p*mmu.PageSize)
		if err := machine.CPUByID(1).Load(grantee, va, buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	before := machine.Meter.Count(clock.OpTLBShootdown)
	if err := g.Revoke(); err != nil {
		t.Fatal(err)
	}
	if got := machine.Meter.Count(clock.OpTLBShootdown) - before; got != 2 {
		t.Fatalf("revoke charged %d shootdowns, want 2 (both pages cached on CPU 1)", got)
	}
	if got := machine.MMU.TLBStatsOn(1).Shootdowns; got != 2 {
		t.Fatalf("CPU 1 received %d shootdowns, want 2", got)
	}
}

func TestCondemnDomain(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner, victim, bystander := svc.NewDomain(), svc.NewDomain(), svc.NewDomain()

	// The victim both owns a segment (granted to a bystander) and holds
	// a grant on someone else's segment.
	ownSeg, err := reg.NewSegment(victim, 1)
	if err != nil {
		t.Fatal(err)
	}
	outGrant, err := ownSeg.Grant(bystander, RO)
	if err != nil {
		t.Fatal(err)
	}
	outAtt, err := reg.Attach(outGrant.Ref())
	if err != nil {
		t.Fatal(err)
	}
	otherSeg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	inGrant, err := otherSeg.Grant(victim, RW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Attach(inGrant.Ref()); err != nil {
		t.Fatal(err)
	}

	reg.CondemnDomain(victim)

	// Grants TO the victim are revoked; its mappings are gone.
	if _, err := reg.Attach(inGrant.Ref()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("attach of victim's inbound grant = %v, want ErrRevoked", err)
	}
	if got := svc.Machine().MMU.Mappings(victim); got != 0 {
		t.Fatalf("victim still holds %d mappings after condemn", got)
	}
	// Segments OWNED by the victim are destroyed, revoking the
	// bystander's attachment too.
	if err := outAtt.Load(0, make([]byte, 1)); !errors.Is(err, ErrRevoked) {
		t.Fatalf("bystander attachment of victim-owned segment = %v, want ErrRevoked", err)
	}
	// No fresh segment, grant or attach may involve the victim.
	if _, err := reg.NewSegment(victim, 1); !errors.Is(err, ErrCondemned) {
		t.Fatalf("NewSegment in condemned domain = %v, want ErrCondemned", err)
	}
	if _, err := otherSeg.Grant(victim, RO); !errors.Is(err, ErrCondemned) {
		t.Fatalf("Grant to condemned domain = %v, want ErrCondemned", err)
	}

	// Absolution bounds the condemned set; the context is (in a real
	// teardown) destroyed by then, so nothing new can map anyway.
	reg.AbsolveDomain(victim)
	if _, err := reg.NewSegment(victim, 1); err != nil {
		// Context still exists in this unit test, so creation works
		// again — absolution only lifts the registry-level gate.
		t.Fatalf("NewSegment after absolve = %v", err)
	}
}

// TestGrantLifecycleRaces hammers one registry with concurrent
// creates, grants, attaches, revokes and domain condemns. It asserts
// nothing beyond the registry's own invariants — the run being
// -race-clean and deadlock-free is the point — plus the terminal
// state: after every domain is condemned, no segment survives.
func TestGrantLifecycleRaces(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 4)
	const domains = 4
	ctxs := make([]mmu.ContextID, domains)
	for i := range ctxs {
		ctxs[i] = svc.NewDomain()
	}

	var wg sync.WaitGroup
	for w := 0; w < domains; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				seg, err := reg.NewSegment(ctxs[me], 1)
				if err != nil {
					continue
				}
				peer := ctxs[(me+1+i%(domains-1))%domains]
				g, err := seg.Grant(peer, RW)
				if err != nil {
					_ = seg.Destroy()
					continue
				}
				if att, err := reg.Attach(g.Ref()); err == nil {
					_ = att.Store(0, []byte{byte(i)})
					_ = att.Load(0, make([]byte, 1))
				}
				if i%2 == 0 {
					_ = g.Revoke()
				}
				_ = seg.Destroy()
			}
		}(w)
	}
	wg.Wait()

	for _, ctx := range ctxs {
		reg.CondemnDomain(ctx)
	}
	if n := reg.Segments(); n != 0 {
		t.Fatalf("%d segments survive after every domain condemned", n)
	}
	for _, ctx := range ctxs {
		if got := svc.Machine().MMU.Mappings(ctx); got != 0 {
			t.Fatalf("context %d still holds %d mappings", ctx, got)
		}
	}
}
