// Package threads is the Paramecium thread package: an ordinary
// component living *outside* the nucleus that turns processor events
// into pop-up threads.
//
// The centrepiece is the proto-thread optimization from Section 3 of
// the paper: "for efficiency reasons, we delay the actual creation of
// the pop-up thread by creating a proto-thread. Only when the
// proto-thread is about to block or be rescheduled do we turn it into
// a real thread. This allows us to provide fast interrupt processing
// of user code with proper thread semantics."
//
// Threads are cooperative: at most one simulated thread runs per
// virtual CPU (one CPU, scheduled round-robin, unless the scheduler is
// built with NewSchedulerCPUs, which dispatches work-stealing across
// per-CPU run queues). Each simulated thread is backed by a host
// goroutine exchanging a baton with a dispatcher; all costs (thread
// creation, promotion, scheduling decisions) are charged in virtual
// cycles, so the host goroutine machinery does not pollute the
// experiments.
package threads

import (
	"fmt"
	"sync"
	"sync/atomic"

	"paramecium/internal/mmu"
)

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	StateReady State = iota
	StateRunning
	StateBlocked
	StateSleeping
	StateDone
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Thread is a simulated thread. The function run by the thread
// receives the *Thread and must use it for all blocking operations
// (Yield, Sleep, Mutex.Lock, Cond.Wait).
type Thread struct {
	id    uint64
	name  string
	sched *Scheduler

	// cpu is the virtual CPU the thread last ran on (its affinity for
	// requeueing), or NoCPU before the first dispatch. Stealing
	// rewrites it at the next dispatch.
	cpu atomic.Int32

	// node is the NUMA node first placement should rotate within —
	// the spawner's node for Thread.Spawn siblings — or -1 when the
	// thread has no placement hint. Meaningless once cpu is set.
	node atomic.Int32

	// mu guards the mutable fields below; the scheduler's own lock
	// orders cross-thread transitions.
	mu       sync.Mutex
	state    State
	proto    bool // started as a proto-thread
	promoted bool // proto-thread has been turned into a real thread

	// Baton protocol:
	//   resume <- : scheduler tells the thread to run.
	//   parked <- : thread tells the scheduler it stopped running.
	// For proto-threads the first stop is reported on protoDone
	// instead of parked (the dispatcher, not the scheduler, waits).
	resume    chan struct{}
	parked    chan struct{}
	protoDone chan bool // true = ran to completion, false = promoted

	done chan struct{} // closed when the thread finishes
}

// ID returns the thread identifier.
func (t *Thread) ID() uint64 { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// State reports the current scheduling state.
func (t *Thread) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// LastCPU reports the virtual CPU the thread last ran on, or mmu.NoCPU
// if it has not been dispatched yet. The identity is the machine's
// own: scheduler CPU k is hw.Machine.CPUByID(k), so the value indexes
// per-CPU TLB and trap state directly.
func (t *Thread) LastCPU() mmu.CPUID { return mmu.CPUID(t.cpu.Load()) }

// Spawn creates an unaffined sibling thread placed near the spawner:
// with a NUMA topology the child's first placement rotates across the
// CPUs of the spawner's node (spilling cross-node only through work
// stealing); without one it falls back to the scheduler's flat
// round-robin. The full thread-creation cost is charged immediately.
func (t *Thread) Spawn(name string, fn func(*Thread)) *Thread {
	return t.sched.spawnNear(mmu.CPUID(t.cpu.Load()), name, fn)
}

// Load reads simulated memory at va in context ctx through the CPU the
// thread is currently dispatched on, so the access populates (and the
// misses charge) that CPU's TLB.
func (t *Thread) Load(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	e, cpu, err := t.execCPU()
	if err != nil {
		return err
	}
	return e.LoadOn(cpu, ctx, va, buf)
}

// Store writes simulated memory at va in context ctx through the CPU
// the thread is currently dispatched on.
func (t *Thread) Store(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	e, cpu, err := t.execCPU()
	if err != nil {
		return err
	}
	return e.StoreOn(cpu, ctx, va, buf)
}

// Touch performs a zero-length access of the given kind at va on the
// thread's current CPU: the full translation (and fault) machinery
// without moving data.
func (t *Thread) Touch(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access) error {
	e, cpu, err := t.execCPU()
	if err != nil {
		return err
	}
	return e.TouchOn(cpu, ctx, va, access)
}

// TouchTagged is Touch with a caller-supplied token delivered in the
// trap frame of any resulting page fault.
func (t *Thread) TouchTagged(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access, token uint64) error {
	e, cpu, err := t.execCPU()
	if err != nil {
		return err
	}
	return e.TouchTaggedOn(cpu, ctx, va, access, token)
}

// execCPU resolves the thread's execution context: the scheduler's
// attached machine access plane plus the CPU the thread is dispatched
// on. A thread that has never been dispatched (and carries no binding)
// has no CPU identity yet — that is an error, never a silent fallback
// to another CPU's TLB.
func (t *Thread) execCPU() (Exec, mmu.CPUID, error) {
	e := t.sched.exec
	if e == nil {
		return nil, mmu.NoCPU, ErrNoExec
	}
	cpu := mmu.CPUID(t.cpu.Load())
	if cpu == mmu.NoCPU {
		return nil, mmu.NoCPU, ErrNotDispatched
	}
	return e, cpu, nil
}

// Promoted reports whether this thread began life as a proto-thread
// and was promoted to a real thread.
func (t *Thread) Promoted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.promoted
}

// Done returns a channel closed when the thread finishes. Intended for
// the host-side test harness, not for simulated code.
func (t *Thread) Done() <-chan struct{} { return t.done }

func (t *Thread) setState(s State) {
	t.mu.Lock()
	t.state = s
	t.mu.Unlock()
}

// stop reports "I stopped running" to whoever is waiting: the
// scheduler (parked) or, for a not-yet-promoted proto-thread, the
// event dispatcher (protoDone).
func (t *Thread) stop(completed bool) {
	t.mu.Lock()
	isProtoFirstStop := t.proto && !t.promoted
	if isProtoFirstStop && !completed {
		t.promoted = true
	}
	t.mu.Unlock()
	if isProtoFirstStop {
		t.protoDone <- completed
		return
	}
	t.parked <- struct{}{}
}

// Yield voluntarily gives up the processor; the thread goes to the
// back of the ready queue. A proto-thread that yields is promoted (it
// is "about to be rescheduled").
func (t *Thread) Yield() {
	s := t.sched
	s.mu.Lock()
	wasProto := t.proto && !t.promoted
	if wasProto {
		s.chargePromotion()
	}
	t.setState(StateReady)
	s.ready(t)
	s.mu.Unlock()
	t.stop(false)
	<-t.resume
	t.setState(StateRunning)
}

// Sleep blocks the thread for the given number of virtual cycles. The
// scheduler advances the clock when all threads are sleeping, so
// virtual sleeps complete without wall-clock delay.
func (t *Thread) Sleep(cycles uint64) {
	s := t.sched
	s.mu.Lock()
	if t.proto && !t.promoted {
		s.chargePromotion()
	}
	t.setState(StateSleeping)
	deadline := s.meter.Clock.Now() + cycles
	s.sleepers = append(s.sleepers, sleeper{t: t, deadline: deadline})
	s.mu.Unlock()
	t.stop(false)
	<-t.resume
	t.setState(StateRunning)
}

// block parks the thread after registering it with a wait queue; the
// registration runs under the scheduler lock so wakeups cannot be
// lost. Used by the synchronization primitives.
func (t *Thread) block(register func()) {
	t.sched.mu.Lock()
	t.blockLocked(register)
}

// blockLocked is block for callers already holding the scheduler lock;
// it releases the lock before parking. A proto-thread blocking for the
// first time is promoted here.
func (t *Thread) blockLocked(register func()) {
	s := t.sched
	if t.proto && !t.promoted {
		s.chargePromotion()
	}
	t.setState(StateBlocked)
	if register != nil {
		register()
	}
	s.mu.Unlock()
	t.stop(false)
	<-t.resume
	t.setState(StateRunning)
}
