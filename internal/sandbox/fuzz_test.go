package sandbox

import (
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
)

// TestInterpreterTotalOnRandomPrograms feeds the interpreter random
// instruction streams: it must always terminate (fuel) and never
// panic, regardless of how malformed the program is. This is the
// robustness property a kernel-resident interpreter must have even
// for *certified* components — certification protects trust, not the
// interpreter's own totality.
func TestInterpreterTotalOnRandomPrograms(t *testing.T) {
	f := func(raw []byte, memSeed uint64) bool {
		// Build a program from raw bytes, 12 per instruction.
		n := len(raw) / instrSize
		if n == 0 {
			return true
		}
		prog := make(Program, n)
		for i := range prog {
			b := raw[i*instrSize : (i+1)*instrSize]
			prog[i] = Instr{
				Op:  Opcode(b[0] % uint8(opcodeCount+3)), // include some illegal ops
				A:   b[1] % (NumRegs + 2),                // include some bad regs
				B:   b[2] % (NumRegs + 2),
				C:   b[3] % (NumRegs + 2),
				Imm: int64(int8(b[4])), // small immediates hit jump targets
			}
		}
		mem := make([]byte, 256)
		clock.NewRand(memSeed).Bytes(mem)
		e := Exec{Fuel: 10_000}
		_, _ = e.Run(prog, mem) // must not panic or hang
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRewriteTotalOnVerifiedPrograms: any program the verifier
// accepts must survive rewriting, and the rewritten form must pass
// sandbox-enforced execution or fail with a clean error.
func TestRewriteTotalOnVerifiedPrograms(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw) / instrSize
		if n == 0 {
			return true
		}
		prog := make(Program, n)
		for i := range prog {
			b := raw[i*instrSize : (i+1)*instrSize]
			prog[i] = Instr{
				Op:  Opcode(b[0] % uint8(opcodeCount)),
				A:   b[1] % (NumRegs - 1), // avoid the sandbox register
				B:   b[2] % (NumRegs - 1),
				C:   b[3] % (NumRegs - 1),
				Imm: int64(b[4]) % int64(n),
			}
		}
		if Verify(prog) != nil {
			return true // verifier rejected: out of scope
		}
		rewritten, err := Rewrite(prog)
		if err != nil {
			return false // verified programs must rewrite
		}
		e := Exec{Fuel: 10_000, EnforceSandbox: true}
		_, _ = e.Run(rewritten, make([]byte, 256))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeTotalOnRandomImages: image decoding must never panic.
func TestDecodeTotalOnRandomImages(t *testing.T) {
	f := func(image []byte) bool {
		_, _ = Decode(image)
		// Also with a valid magic prefix stapled on.
		_, _ = Decode(append([]byte(imageMagic), image...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleTotalOnRandomText: the assembler must reject or accept,
// never panic, on arbitrary text.
func TestAssembleTotalOnRandomText(t *testing.T) {
	f := func(src string) bool {
		_, _ = Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
