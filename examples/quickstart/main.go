// Quickstart: embed a Paramecium kernel through the public API only.
// Boot a system, define a component as an object with a named
// interface, register it in the hierarchical name space, late-bind it
// from an application domain (getting a proxy), pre-resolve method
// handles, and call across the protection boundary.
package main

import (
	"fmt"
	"log"

	"paramecium"
	"paramecium/api"
)

func main() {
	log.SetFlags(0)

	// 1. Boot: the nucleus is a static composition of the four
	// services (events, memory, directory, certification).
	sys, err := paramecium.Boot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted")

	// 2. A component is an object exporting a *named* interface: a
	// set of methods, a state pointer and type information. Each
	// method gets a dispatch slot at declaration time.
	greetDecl := api.MustInterfaceDecl("example.greeter.v1",
		api.MethodDecl{Name: "greet", NumIn: 1, NumOut: 1},
		api.MethodDecl{Name: "count", NumIn: 0, NumOut: 1},
	)
	greeter := sys.NewObject("greeter")
	greeted := 0
	bi, err := greeter.AddInterface(greetDecl, &greeted)
	if err != nil {
		log.Fatal(err)
	}
	bi.MustBind("greet", func(args ...any) ([]any, error) {
		greeted++
		return []any{"hello, " + args[0].(string)}, nil
	}).MustBind("count", func(...any) ([]any, error) {
		return []any{greeted}, nil
	})

	// 3. Register the instance under an instance name. The greeter
	// lives in the kernel protection domain here.
	if err := sys.Register("/services/greeter", greeter); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered /services/greeter")

	// 4. An application domain late-binds by name. Because the
	// greeter lives in another protection domain, the directory
	// service hands the application a *proxy*: same interfaces, but
	// every call page-faults into the kernel, which switches domains
	// and invokes the real method. Bind once, resolve the methods
	// once, call many times — no per-call name lookup.
	app := sys.NewDomain("app")
	h, err := app.Bind("/services/greeter")
	if err != nil {
		log.Fatal(err)
	}
	greet, err := h.Resolve("example.greeter.v1", "greet")
	if err != nil {
		log.Fatal(err)
	}
	count, err := h.Resolve("example.greeter.v1", "count")
	if err != nil {
		log.Fatal(err)
	}

	before := sys.Cycles()
	res, err := greet.Call("world")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-domain call returned %q (%d virtual cycles)\n",
		res[0], sys.Cycles()-before)

	res, err = count.Call()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeter state observed through the proxy: count = %v\n", res[0])

	// 5. The same name resolves differently per domain: a test domain
	// overrides the greeter with a mock, without anyone else noticing.
	mock := sys.NewObject("mock-greeter")
	mbi, err := mock.AddInterface(greetDecl, nil)
	if err != nil {
		log.Fatal(err)
	}
	mbi.MustBind("greet", func(args ...any) ([]any, error) {
		return []any{"MOCK says hi to " + args[0].(string)}, nil
	}).MustBind("count", func(...any) ([]any, error) { return []any{-1}, nil })

	test := sys.NewDomain("test")
	if err := test.Override("/services/greeter", mock); err != nil {
		log.Fatal(err)
	}
	th, err := test.Bind("/services/greeter")
	if err != nil {
		log.Fatal(err)
	}
	res, err = th.Invoke("example.greeter.v1", "greet", "tester")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test domain, same name, overridden binding: %q\n", res[0])

	// The app domain's pre-resolved handle still reaches the real
	// greeter: overrides affect future binds, not live handles.
	res, err = count.Call()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app domain unaffected: count = %v\n", res[0])
	fmt.Println("quickstart complete")
}
