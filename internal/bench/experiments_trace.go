package bench

import (
	"fmt"
	"time"

	"paramecium/internal/clock"
	"paramecium/internal/probe"
)

// P10TraceOverhead measures what the kernel flight recorder costs the
// host, and proves it costs the simulation nothing. Two workloads, each
// run with tracing off and on: the bare emit path (one gated event
// emission, the per-event cost every instrumented site pays), and the
// full cross-domain invocation (every crossing emits a begin/end pair
// and rolls its charges into the per-domain ledger). Host nanoseconds
// rise when the gate opens; virtual cycles per call are identical in
// both states — recording is free in virtual time, so observing the
// simulation does not perturb it.
//
// Like the rest of the P-series the host-time columns vary with
// hardware; the cycles column is deterministic and its off/on equality
// is the claim under test (the root-level TestTraceCyclesUnperturbed
// asserts it exactly).
func P10TraceOverhead() Table {
	t := Table{
		ID:     "P10",
		Title:  "Flight-recorder overhead: emit and crossing cost, tracing off vs on",
		Claim:  `monitoring built into the kernel must be affordable enough to leave on: the disabled probe path is one atomic load, and recording never advances the virtual clock`,
		Header: []string{"workload", "tracing", "host ns/op", "cycles/op"},
	}
	const rounds = 4096

	for _, state := range []string{"off", "on"} {
		m := clock.NewMeter(clock.DefaultCosts())
		if state == "on" {
			m.EnableTracing(probe.NewRecorder(1, 0), probe.NewLedger(clock.LedgerSlots))
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if probe.Enabled() {
				m.Emit(0, probe.KindDoorbell, 1, uint64(i), 0)
			}
		}
		hostNS := float64(time.Since(start).Nanoseconds()) / rounds
		t.AddRow("emit", state, fmt.Sprintf("%.1f", hostNS), 0)
		m.DisableTracing()
	}

	var cyclesByState [2]uint64
	for si, state := range []string{"off", "on"} {
		inc, _, w := SharedCounterHandleCPUs(1)
		if state == "on" {
			w.K.Meter.EnableTracing(
				probe.NewRecorder(w.K.Machine.NumCPUs(), 0),
				probe.NewLedger(clock.LedgerSlots))
		}
		var buf [1]any
		watch := w.K.Meter.Clock.StartWatch()
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := inc.CallInto(buf[:0]); err != nil {
				panic(fmt.Sprintf("bench: traced cross call: %v", err))
			}
		}
		hostNS := float64(time.Since(start).Nanoseconds()) / rounds
		cyclesByState[si] = watch.Elapsed()
		t.AddRow("cross-domain call", state,
			fmt.Sprintf("%.1f", hostNS),
			fmt.Sprintf("%.1f", float64(cyclesByState[si])/rounds))
		w.K.Meter.DisableTracing()
	}
	if cyclesByState[0] != cyclesByState[1] {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"WARNING: tracing perturbed the virtual clock (off=%d on=%d cycles)",
			cyclesByState[0], cyclesByState[1]))
	} else {
		t.Notes = append(t.Notes,
			"virtual cycles identical off and on: recording is free in virtual time")
	}
	t.Notes = append(t.Notes,
		"disabled emit is one atomic load behind an if; CI's allocs gate holds both emit rows at 0 allocs/op")
	return t
}
