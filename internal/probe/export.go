package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteLedgerTable renders the per-domain cycle ledger as an aligned
// text table: one row per domain with its total and the class split
// (crossing vs wire vs copy vs shootdown vs other), followed by each
// domain's top-N operations by attributed cycles. opName and classOf
// translate ledger slots; the clock package supplies both so this
// package stays dependency-free.
func WriteLedgerTable(w io.Writer, rows []RowSnapshot, opName func(int) string, classOf func(int) string, topN int) error {
	classes := []string{"crossing", "wire", "copy", "shootdown", "other"}
	var grand uint64
	for _, r := range rows {
		grand += r.Total
	}
	fmt.Fprintf(w, "== per-domain cycle ledger ==\n")
	fmt.Fprintf(w, "%-8s %14s %7s", "domain", "cycles", "share")
	for _, c := range classes {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintf(w, "  %s\n", "state")
	for _, r := range rows {
		split := make(map[string]uint64, len(classes))
		for op, cyc := range r.Cycles {
			split[classOf(op)] += cyc
		}
		share := 0.0
		if grand > 0 {
			share = 100 * float64(r.Total) / float64(grand)
		}
		state := "live"
		if r.Frozen {
			state = "frozen"
		}
		fmt.Fprintf(w, "%-8d %14d %6.1f%%", r.Domain, r.Total, share)
		for _, c := range classes {
			fmt.Fprintf(w, " %12d", split[c])
		}
		fmt.Fprintf(w, "  %s\n", state)
	}
	fmt.Fprintf(w, "%-8s %14d\n", "total", grand)

	if topN > 0 {
		fmt.Fprintf(w, "\n== hot ops (top %d per domain) ==\n", topN)
		for _, r := range rows {
			type opRow struct {
				op     int
				cycles uint64
				count  uint64
			}
			var ops []opRow
			for op, cyc := range r.Cycles {
				if cyc > 0 || r.Counts[op] > 0 {
					ops = append(ops, opRow{op, cyc, r.Counts[op]})
				}
			}
			sort.Slice(ops, func(i, j int) bool {
				if ops[i].cycles != ops[j].cycles {
					return ops[i].cycles > ops[j].cycles
				}
				return ops[i].op < ops[j].op
			})
			if len(ops) > topN {
				ops = ops[:topN]
			}
			fmt.Fprintf(w, "domain %d:\n", r.Domain)
			for _, o := range ops {
				fmt.Fprintf(w, "  %-20s %14d cycles %10d ops\n", opName(o.op), o.cycles, o.count)
			}
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). Virtual cycles map directly onto the
// format's microsecond timestamps; the per-CPU rings map onto threads.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders a snapshot's per-CPU event timelines as
// Chrome trace_event JSON. Crossing begin/end pairs become duration
// slices; every other kind is an instant event. One virtual cycle is
// rendered as one microsecond.
func WriteChromeTrace(w io.Writer, perCPU [][]Event) error {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for cpu, evs := range perCPU {
		for _, e := range evs {
			ce := chromeEvent{
				Name: e.Kind.String(),
				Ts:   e.Cycles,
				Pid:  0,
				Tid:  cpu,
				Args: map[string]uint64{
					"domain": uint64(e.Domain),
					"a":      e.A,
					"b":      e.B,
				},
			}
			switch e.Kind {
			case KindCrossingBegin:
				ce.Name = "crossing"
				ce.Ph = "B"
			case KindCrossingEnd:
				ce.Name = "crossing"
				ce.Ph = "E"
			default:
				ce.Ph = "i"
				ce.S = "t"
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// WriteTimeline renders a snapshot's events as a per-CPU text
// timeline, ordered by virtual time within each CPU.
func WriteTimeline(w io.Writer, perCPU [][]Event) error {
	for cpu, evs := range perCPU {
		fmt.Fprintf(w, "== cpu %d (%d events) ==\n", cpu, len(evs))
		for _, e := range evs {
			fmt.Fprintf(w, "%12d  %-16s domain=%-4d a=%-6d b=%d\n",
				e.Cycles, e.Kind.String(), e.Domain, e.A, e.B)
		}
	}
	return nil
}
