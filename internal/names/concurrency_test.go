package names

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"paramecium/internal/obj"
)

// TestSpaceConcurrentStress hammers one Space with parallel Register,
// Bind, Replace, Unregister, List and Walk. The copy-on-write tree
// must keep every reader on a consistent snapshot: a Bind either
// finds a complete entry or a clean not-found, never a torn tree.
func TestSpaceConcurrentStress(t *testing.T) {
	s := NewSpace(nil)
	inst := func(class string) obj.Instance { return obj.New(class, nil) }

	// A stable population that must survive the churn untouched.
	for i := 0; i < 8; i++ {
		if err := s.Register(fmt.Sprintf("/stable/svc%d", i), inst("stable")); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := fmt.Sprintf("/churn/w%d/leaf", w)
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					if err := s.Register(path, inst("churn")); err != nil {
						t.Errorf("register: %v", err)
						return
					}
				case 1:
					if _, err := s.Replace(path, inst("churn2")); err != nil {
						t.Errorf("replace: %v", err)
						return
					}
				case 2:
					if _, err := s.Bind(path); err != nil {
						t.Errorf("bind own leaf: %v", err)
						return
					}
				case 3:
					if err := s.Unregister(path); err != nil {
						t.Errorf("unregister: %v", err)
						return
					}
				}
				// Readers on the stable population, every iteration.
				if _, err := s.Bind(fmt.Sprintf("/stable/svc%d", i%8)); err != nil {
					t.Errorf("stable bind: %v", err)
					return
				}
			}
		}(w)
	}
	// Dedicated snapshot readers: List and Walk while writers churn.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.List("/stable"); err != nil {
					t.Errorf("list: %v", err)
					return
				}
				seen := 0
				err := s.Walk(func(string, obj.Instance) error { seen++; return nil })
				if err != nil {
					t.Errorf("walk: %v", err)
					return
				}
				if seen < 8 {
					t.Errorf("walk saw %d instances, stable population is 8", seen)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The churn paths are all unregistered (rounds%4==0 ends each
	// worker on an unregister); the stable population remains.
	for i := 0; i < 8; i++ {
		if _, err := s.Bind(fmt.Sprintf("/stable/svc%d", i)); err != nil {
			t.Fatalf("stable svc%d lost: %v", i, err)
		}
	}
	for w := 0; w < workers; w++ {
		_, err := s.Bind(fmt.Sprintf("/churn/w%d/leaf", w))
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("churn leaf w%d should be gone, got %v", w, err)
		}
	}
}

// TestSpaceConcurrentRegisterDisjoint: parallel registrations under
// one shared parent must all land.
func TestSpaceConcurrentRegisterDisjoint(t *testing.T) {
	s := NewSpace(nil)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Register(fmt.Sprintf("/services/s%d", i), obj.New("svc", nil)); err != nil {
				t.Errorf("register s%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	ls, err := s.List("/services")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != n {
		t.Fatalf("listed %d entries, want %d", len(ls), n)
	}
}

// TestViewConcurrentBindAndOverride: view override mutation racing
// lock-free space lookups through the view chain.
func TestViewConcurrentBindAndOverride(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Register("/svc/a", obj.New("real", nil)); err != nil {
		t.Fatal(err)
	}
	root := RootView(s)
	child := root.Child()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inst, err := child.Bind("/svc/a")
				if err != nil {
					t.Errorf("bind: %v", err)
					return
				}
				if c := inst.Class(); c != "real" && c != "override" {
					t.Errorf("bind resolved to %q", c)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := child.Override("/svc/a", obj.New("override", nil)); err != nil {
				t.Errorf("override: %v", err)
				return
			}
			if err := child.ClearOverride("/svc/a"); err != nil {
				t.Errorf("clear: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
