// Package hotpathalloc is the golden suite for the hotpathalloc
// analyzer: //paramecium:hotpath functions must not allocate.
package hotpathalloc

import "fmt"

type ring struct {
	buf  []byte
	errs []error
}

type parsedError struct{ code int }

func (e *parsedError) Error() string { return "parsed" }

// setup is not annotated: allocation is fine off the hot path.
func setup(n int) []byte {
	return make([]byte, n)
}

// push reuses its retained buffer: the one append form allowed.
//
//paramecium:hotpath
func (r *ring) push(b []byte) {
	r.buf = append(r.buf, b...)
}

// bad allocates in every way at once.
//
//paramecium:hotpath
func (r *ring) bad(n int, name string) {
	tmp := make([]byte, n) // want `hot path calls make`
	p := new(int)          // want `hot path calls new`
	r.buf = append(tmp, 1) // want `hot path appends to a slice it does not reuse`
	_ = name + "!"         // want `hot path concatenates strings`
	s := []int{1, 2, 3}    // want `hot path builds a slice literal`
	go func() {}()         // want `hot path spawns a goroutine` `hot path creates a function literal`
	_, _ = p, s
}

func sink(v any) {}

// box passes a non-pointer into an interface parameter.
//
//paramecium:hotpath
func (r *ring) box(x int, e *parsedError) {
	sink(x) // want `hot path boxes a non-pointer int into an interface argument`
	sink(e)
}

// fail formats an error: fmt/errors calls are the exempt error path.
//
//paramecium:hotpath
func (r *ring) fail(code int) error {
	return fmt.Errorf("code %d", code)
}

// errPath constructs an error value, which is exempt by type.
//
//paramecium:hotpath
func (r *ring) errPath(ok bool) error {
	if !ok {
		return &parsedError{code: 7}
	}
	return nil
}

// locked defers a statement-scoped closure, which is allowed.
//
//paramecium:hotpath
func (r *ring) locked(mu interface {
	Lock()
	Unlock()
}) {
	mu.Lock()
	defer func() { mu.Unlock() }()
}

// lazyInit is a reviewed one-time allocation.
//
//paramecium:hotpath
func (r *ring) lazyInit() {
	if r.errs == nil {
		//paralint:ignore hotpathalloc one-time lazy initialization, amortized to zero per call
		r.errs = make([]error, 0, 8)
	}
}
