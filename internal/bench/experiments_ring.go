package bench

import (
	"errors"
	"fmt"

	"paramecium/internal/obj"
	"paramecium/internal/ring"
)

// The P7 experiment measures the streaming data plane: a
// single-producer/single-consumer ring over a shared segment, one
// doorbell notify per burst. Where P6 pays a vectored notify per
// transfer (≈59 cycles at any size), the ring pays a few cycles of
// descriptor bookkeeping per record plus ONE doorbell crossing per
// burst — so per-record cost falls toward the push+pop floor as the
// burst grows, the same shape batching gave call amortization in P5,
// now applied to bulk-data notification.
//
// Per-record work matches the P6 share harness: the producer
// publishes an 8-byte record header (the slot descriptor), the
// consumer validates it in place through its own mapping. Payload
// bytes live in the mapped slots and are charged only to the side
// that actually touches them; path=inline instead copies the full
// payload through Push/Pop on every record, as a contrast row.

// RingStream is the P7 harness: producer and consumer domains joined
// by a ring, the consumer draining inside its doorbell method — one
// vectored crossing wakes it for a whole burst.
type RingStream struct {
	W     *World
	R     *ring.Ring
	prod  *ring.Producer
	burst int
	size  int

	inline  bool
	payload []byte // push source (inline rows)
	popbuf  []byte // pop destination (inline rows)
}

// NewRingStream boots a world with producer and consumer domains, a
// ring of 2*burst slots of the given record size between them, and a
// drain service in the consumer domain installed as the ring's
// doorbell: each Notify crosses once and the consumer drains every
// published record. With inline set, records are pushed and popped by
// full copy; otherwise they are published in place and only the
// descriptor is validated, like P6's share path.
func NewRingStream(size, burst int, inline bool) *RingStream {
	w := NewWorld()
	prodDom := w.K.NewDomain("producer")
	consDom := w.K.NewDomain("consumer")
	r, err := prodDom.NewRing(consDom, 2*burst, size)
	if err != nil {
		panic(fmt.Sprintf("bench: ring: %v", err))
	}
	h := &RingStream{
		W: w, R: r, prod: r.Producer(), burst: burst, size: size,
		inline: inline,
	}
	cons := r.Consumer()
	if inline {
		h.payload = make([]byte, size)
		for i := range h.payload {
			h.payload[i] = 0x5A
		}
		h.popbuf = make([]byte, size)
	}

	decl := obj.MustInterfaceDecl("bench.ringdrain.v1",
		obj.MethodDecl{Name: "drain", NumIn: 0, NumOut: 0})
	server := obj.New("ring-drain", w.K.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBindInto("drain", func(out []any, args ...any) ([]any, error) {
		for {
			if h.inline {
				if _, err := cons.Pop(h.popbuf); err != nil {
					if errors.Is(err, ring.ErrEmpty) {
						return out, nil
					}
					return nil, err
				}
				continue
			}
			// Validate the record's 8-byte header (its descriptor) in
			// place — the same per-transfer work as the P6 share path —
			// and release the slot. The payload never moves.
			_, n, err := cons.Peek()
			if err != nil {
				if errors.Is(err, ring.ErrEmpty) {
					return out, nil
				}
				return nil, err
			}
			if n != h.size {
				return nil, fmt.Errorf("bench: ring record %d bytes, want %d", n, h.size)
			}
			if err := cons.Release(); err != nil {
				return nil, err
			}
		}
	})
	if err := w.K.Register("/services/ringdrain", server, consDom.Ctx); err != nil {
		panic(err)
	}
	drain, err := prodDom.ResolveMethod("/services/ringdrain", "bench.ringdrain.v1", "drain")
	if err != nil {
		panic(err)
	}
	h.prod.SetDoorbell(drain)
	return h
}

// Prepare stages the in-place payload pattern once, mirroring the P6
// share harness: production writes the mapped slots at the producer's
// own (charged) pace — per record, only the descriptor rides the
// protocol.
func (h *RingStream) Prepare() {
	if h.inline {
		return
	}
	off, err := h.prod.ProduceOffset()
	if err != nil {
		panic(err)
	}
	pattern := make([]byte, h.size)
	for i := range pattern {
		pattern[i] = 0x5A
	}
	if err := h.R.Segment().Store(off, pattern); err != nil {
		panic(err)
	}
}

// Run streams n records through the ring in bursts: push the burst,
// ring the doorbell once, and the consumer's drain method consumes
// every record inside that one crossing.
func (h *RingStream) Run(n int) {
	for i := 0; i < n; {
		k := h.burst
		if rem := n - i; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			var err error
			if h.inline {
				err = h.prod.Push(h.payload)
			} else {
				err = h.prod.PushInPlace(h.size)
			}
			if err != nil {
				panic(fmt.Sprintf("bench: ring push: %v", err))
			}
		}
		if err := h.prod.Notify(); err != nil {
			panic(fmt.Sprintf("bench: ring notify: %v", err))
		}
		i += k
	}
}

// Finish hangs the ring up inside the measured window, mirroring P6's
// revoke: the tombstone left behind is what a consumer would read as
// end-of-stream.
func (h *RingStream) Finish() {
	if err := h.prod.Hangup(); err != nil {
		panic(err)
	}
}

// P7RingStream sweeps burst size at 4 KiB records and record size at
// burst 64, comparing sustained ring streaming against the
// per-transfer share+notify of P6. The ring's advantage is the
// notification amortization: per record it pays push+pop bookkeeping
// (flat in payload size) plus doorbell/burst, so it beats the
// per-transfer pattern ≥2x from burst 16 up and the gap widens with
// burst — while the inline contrast row shows the copy cost the
// in-place path avoids.
func P7RingStream() Table {
	t := Table{
		ID:     "P7",
		Title:  "Streaming ring vs per-transfer share+notify (virtual cycles per record)",
		Claim:  `completing the shared-memory + event-driven model: records stream through a mapped ring with one doorbell per burst, so sustained throughput pays the crossing once per burst instead of once per transfer`,
		Header: []string{"bytes", "burst", "path", "ring cycles/rec", "P6 share cycles/op", "advantage"},
	}
	const ops = 2048
	shareCost := map[int]float64{}
	cost := func(size, burst int, inline bool) float64 {
		h := NewRingStream(size, burst, inline)
		watch := h.W.K.Meter.Clock.StartWatch()
		h.Prepare()
		h.Run(ops)
		h.Finish()
		return float64(watch.Elapsed()) / ops
	}
	share := func(size int) float64 {
		if c, ok := shareCost[size]; ok {
			return c
		}
		h := NewBulkShare(size)
		watch := h.W.K.Meter.Clock.StartWatch()
		h.Prepare()
		h.Run(ops)
		h.Finish()
		shareCost[size] = float64(watch.Elapsed()) / ops
		return shareCost[size]
	}
	type row struct {
		size, burst int
		inline      bool
	}
	for _, r := range []row{
		{256, 64, false},
		{4096, 16, false},
		{4096, 64, false},
		{4096, 256, false},
		{65536, 64, false},
		{4096, 64, true},
	} {
		path := "place"
		if r.inline {
			path = "inline"
		}
		rc := cost(r.size, r.burst, r.inline)
		sc := share(r.size)
		t.AddRow(r.size, r.burst, path,
			fmt.Sprintf("%.1f", rc),
			fmt.Sprintf("%.1f", sc),
			fmt.Sprintf("%.2fx", sc/rc))
	}
	t.Notes = append(t.Notes,
		"deterministic virtual cycles; one doorbell crossing per burst, the consumer drains inside its doorbell method",
		"path=place publishes records in place: per record only the 8-byte descriptor is written and validated, like P6 share's header — payload pages are charged to whoever touches them",
		"path=inline copies the full payload through Push and Pop on every record: the contrast showing what in-place streaming avoids",
		"hangup (grant revoke) is inside the measured window, amortized over the run")
	return t
}
