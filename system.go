package paramecium

import (
	"fmt"
	"sync"

	"paramecium/api"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/ring"
	"paramecium/internal/shm"
)

// MachineConfig configures the simulated hardware a system boots on:
// physical frame count, MMU shape and the virtual-cycle cost model.
type MachineConfig = hw.Config

// CostModel prices every hardware and software operation in virtual
// cycles; see DefaultCosts for the calibrated baseline.
type CostModel = clock.CostModel

// DefaultCosts returns the calibrated virtual-cycle cost model.
func DefaultCosts() CostModel { return clock.DefaultCosts() }

// Option configures Boot.
type Option func(*core.Config)

// WithAuthority sets the public key of the certification authority the
// kernel trusts. Without it certification is disabled and every
// kernel-resident placement request fails closed.
func WithAuthority(publicKey []byte) Option {
	return func(c *core.Config) { c.AuthorityKey = publicKey }
}

// WithMachine configures the simulated hardware.
func WithMachine(mc MachineConfig) Option {
	return func(c *core.Config) { c.Machine = mc }
}

// WithCPUs boots the machine with n virtual CPUs: per-CPU context
// registers and TLBs in the MMU, one run queue per CPU in the
// work-stealing thread scheduler, and per-CPU event routing. The
// default (and n <= 1) is a single CPU, which preserves every
// uniprocessor semantic — including deterministic cycle counts —
// exactly.
func WithCPUs(n int) Option {
	return func(c *core.Config) { c.CPUs = n }
}

// Topology is the machine's NUMA shape; see WithTopology. The zero
// value (no topology) is the classic flat machine.
type Topology = hw.Topology

// WithTopology boots the machine as a NUMA topology: nodes memory
// nodes of cpusPerNode CPUs each (the CPU count is nodes×cpusPerNode,
// overriding WithCPUs). Frames are homed on a node at allocation time
// — first-touch by default, explicitly via the memory service's
// AllocPageOnNode — and every access whose CPU's node differs from the
// touched frame's home is charged OpRemoteFrameAccess scaled by the
// node distance (uniform distance 1 here; hand WithMachine a
// hw.Topology with a Distance matrix for asymmetric interconnects).
// The thread scheduler places and steals node-aware. The default
// single-node machine charges nothing new, so uniprocessor and flat
// multiprocessor numbers are unchanged.
func WithTopology(nodes, cpusPerNode int) Option {
	return func(c *core.Config) { c.Machine.Topology = hw.NewTopology(nodes, cpusPerNode) }
}

// Boot assembles a Paramecium system: the simulated machine and the
// nucleus — "a protected and trusted component which implements only
// those services that cannot be moved into the application without
// jeopardizing the system's integrity" — with the root of the
// hierarchical name space over it.
func Boot(opts ...Option) (*System, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	k, err := core.Boot(cfg)
	if err != nil {
		return nil, err
	}
	return &System{k: k}, nil
}

// System is a booted Paramecium kernel as seen by an embedding
// program: a facade over the nucleus, the name space and the
// protection-domain machinery.
type System struct {
	k *core.Kernel

	// traceMu guards tracers: the Tracer installations made through
	// Handle.Trace, merged into TraceSnapshot.
	traceMu sync.Mutex
	tracers []tracedPath
}

// Cycles reports the machine's virtual clock: total cycles charged
// since boot.
func (s *System) Cycles() uint64 { return s.k.Meter.Clock.Now() }

// NumCPUs reports the number of virtual CPUs the system booted with.
func (s *System) NumCPUs() int { return s.k.Machine.NumCPUs() }

// SharedCPULeases reports how many cross-domain calls found every
// virtual CPU busy and were forced to share one (interleaving on its
// TLB). A steadily climbing count is the signal that the workload —
// concurrent callers, or calls nested inside other calls' target
// methods, which hold their outer lease — has outgrown the topology
// and needs WithCPUs(n) raised.
func (s *System) SharedCPULeases() uint64 { return s.k.Machine.SharedLeases() }

// Shutdown releases the scheduler's persistent dispatcher pool, so an
// embedding that discards a multi-CPU system does not strand one
// parked host goroutine per virtual CPU. The system remains usable;
// the next scheduler pump spawns a fresh pool. Single-CPU systems
// hold no pool and Shutdown is a no-op. Shutdown also retires this
// system's flight recorder (if it booted WithTracing): its share of
// the process-wide emit gate is released, so other systems in the
// process go back to the single-load disabled path.
func (s *System) Shutdown() {
	s.k.Sched.Shutdown()
	s.k.Meter.DisableTracing()
}

// NewObject creates an empty object of the given class, wired to the
// system's cycle meter. Export interfaces with AddInterface and bind
// methods before registering it.
func (s *System) NewObject(class string) *api.Object {
	return obj.New(class, s.k.Meter)
}

// NewComposition creates an object composed of other instances.
func (s *System) NewComposition(class string) *api.Composition {
	return obj.NewComposition(class, s.k.Meter)
}

// NewInterposer wraps target in an interposing agent that initially
// forwards everything; specialize it with Wrap and AddExtraInterface.
// The agent is wired to the system's cycle meter, so interposition
// layers are visible in virtual time.
func (s *System) NewInterposer(class string, target api.Instance) *api.Interposer {
	ip := obj.NewInterposer(class, target)
	ip.SetMeter(s.k.Meter)
	return ip
}

// Register places an instance in the name space, resident in the
// kernel protection domain. Domains that bind it are handed a proxy.
func (s *System) Register(path string, inst api.Instance) error {
	return s.k.Register(path, inst, mmu.KernelContext)
}

// Bind resolves path for a kernel-resident caller, returning a handle
// on the instance (reached through a proxy if it lives in an
// application domain).
func (s *System) Bind(path string) (*Handle, error) {
	inst, err := s.k.KernelBind(path)
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, path: path, inst: inst}, nil
}

// Batch is an ordered list of pre-resolved invocations executed
// together: consecutive entries that resolved through one cross-domain
// proxy cross the protection boundary in a single trap — one
// context-switch pair for the whole group — amortizing the fixed
// crossing cost the way active-message systems vector requests. Build
// one with NewBatch (or Handle.Batch), Add resolved method handles,
// then run it with Domain.CallBatch or System.CallBatch and read each
// entry's results back with Results. A batch mixing targets keeps
// that amortization by opting in to grouped dispatch — see BatchMode.
type Batch = api.Batch

// BatchMode selects how a batch orders dispatch across targets:
// strictly in queue order (BatchInOrder, the default), or partitioned
// by target with one crossing per distinct target (BatchGrouped).
// Grouped mode preserves the relative order of entries sharing a
// target but reorders execution across targets, so it is an explicit
// opt-in via Batch.SetMode; results always land in queue order.
type BatchMode = api.BatchMode

// Batch dispatch modes; see BatchMode.
const (
	BatchInOrder = api.BatchInOrder
	BatchGrouped = api.BatchGrouped
)

// NewBatch returns an empty, reusable batch with room for n entries.
func NewBatch(n int) *Batch { return api.NewBatch(n) }

// CallBatch executes a batch from the kernel-resident embedding
// program's call site; routing is carried by each entry's resolved
// handle — see Domain.CallBatch.
func (s *System) CallBatch(b *Batch) error { return s.k.CallBatch(b) }

// NewCoalescer builds a coalescer over the system's virtual clock:
// calls Submitted to it queue into a batch that flushes automatically
// at the size threshold or after a queued call has aged delay virtual
// cycles. size <= 0 selects the measured default (16); delay == 0
// derives the deadline from the cost model's fixed crossing cost.
// See api.Coalescer and Handle.Coalesce.
func (s *System) NewCoalescer(size int, delay uint64) *api.Coalescer {
	return obj.NewCoalescer(s.k.Meter, size, delay)
}

// NewSegment creates a shared-memory segment of n pages owned by the
// kernel protection domain: the zero-copy bulk data plane. Grant it to
// application domains and pass the grant ref across calls; the grantee
// attaches the segment instead of receiving copied bytes. See Segment.
func (s *System) NewSegment(pages int) (*Segment, error) {
	seg, err := s.k.Shm.NewSegment(mmu.KernelContext, pages)
	if err != nil {
		return nil, err
	}
	return &Segment{s: s, seg: seg}, nil
}

// AttachGrant maps a granted segment into its grantee's protection
// domain and returns the live attachment — the grantee-side half of
// the zero-copy handshake, for holders that received a bare GrantRef
// through a call rather than the *Segment itself. Attaching twice
// returns the same attachment; a revoked grant fails with
// api.ErrSegmentRevoked and a forged ref with api.ErrNoGrant.
func (s *System) AttachGrant(ref api.GrantRef) (*api.Attachment, error) {
	return s.k.Shm.Attach(ref)
}

// Interpose replaces the instance at path with an interposing agent
// built by build, returning a handle on the agent. All future binds
// resolve to the agent; existing handles are unaffected — the paper's
// handle-replacement semantics.
func (s *System) Interpose(path string, build func(target api.Instance) (api.Instance, error)) (*Handle, error) {
	agent, err := s.k.Interpose(path, build)
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, path: path, inst: agent}, nil
}

// Unwrap undoes an interposition at path, restoring the wrapped
// instance.
func (s *System) Unwrap(path string) error { return s.k.Unwrap(path) }

// NewDomain creates an application protection domain with its own
// view of the name space, inherited from the root view.
func (s *System) NewDomain(name string) *Domain {
	return &Domain{s: s, d: s.k.NewDomain(name)}
}

// Domain is an application protection domain: a private view of the
// name space plus an address-space context. Objects bound from
// another domain are reached through cross-domain proxies.
type Domain struct {
	s *System
	d *core.Domain
}

// Name reports the domain's name.
func (d *Domain) Name() string { return d.d.Name }

// Register places an instance in the name space, resident in this
// domain. Other domains (and the kernel) reach it through proxies.
func (d *Domain) Register(path string, inst api.Instance) error {
	return d.s.k.Register(path, inst, d.d.Ctx)
}

// Override makes path resolve to inst in this domain's view only,
// without touching the global name space or sibling domains.
func (d *Domain) Override(path string, inst api.Instance) error {
	return d.d.View.Override(path, inst)
}

// Alias redirects this domain's lookups of one path to another.
func (d *Domain) Alias(from, to string) error {
	return d.d.View.Alias(from, to)
}

// Bind resolves path in the domain's view. If the instance lives in
// another protection domain, the handle wraps a proxy — "importing an
// object from another protection domain, by means of the directory
// service, causes a proxy to appear."
func (d *Domain) Bind(path string) (*Handle, error) {
	inst, err := d.d.Bind(path)
	if err != nil {
		return nil, err
	}
	return &Handle{s: d.s, path: path, inst: inst}, nil
}

// CallBatch executes a batch of pre-resolved invocations: consecutive
// entries resolved through one cross-domain proxy are vectored across
// the protection boundary in a single crossing (one crossing per
// distinct target, in any order, if the batch opted in to
// BatchGrouped). Per-entry results and errors are read back from the
// batch; CallBatch returns the first group-level routing error, if
// any. Routing is carried by each entry's resolved handle (which was
// bound to its domain at Resolve time) — the receiver is the call
// site, not a routing input.
func (d *Domain) CallBatch(b *Batch) error { return d.d.CallBatch(b) }

// NewSegment creates a shared-memory segment of n pages owned by this
// domain; see System.NewSegment and Segment.
func (d *Domain) NewSegment(pages int) (*Segment, error) {
	seg, err := d.s.k.Shm.NewSegment(d.d.Ctx, pages)
	if err != nil {
		return nil, err
	}
	return &Segment{s: d.s, seg: seg}, nil
}

// NewRing creates a streaming ring produced by this domain and
// consumed by the to domain: a single-producer/single-consumer record
// ring over a shared segment, with one doorbell notify waking the
// consumer for a whole burst of records. Use it when the workload is
// a sustained stream rather than individual transfers — the ring
// amortizes the notification the way a Segment amortizes the payload
// and a Batch amortizes the call count. See Ring.
func (d *Domain) NewRing(to *Domain, slots, slotBytes int) (*Ring, error) {
	r, err := d.d.NewRing(to.d, slots, slotBytes)
	if err != nil {
		return nil, err
	}
	return &Ring{r: r}, nil
}

// Destroy tears the domain down, closing its proxies, revoking its
// shared-memory grants and segments, and releasing its address space.
func (d *Domain) Destroy() error { return d.s.k.DestroyDomain(d.d) }

// Segment is a shared-memory segment: N pages of refcounted physical
// frames owned by one protection domain, the zero-copy bulk data plane
// between domains. The lifecycle is create → Grant (a capability,
// passed across a call as one word) → Map (the grantee's attachment) →
// Revoke (unmaps it from the grantee everywhere, paying the
// per-remote-CPU TLB shootdown charge for pages still cached).
//
// Cost model: attaching charges the mapping machinery and later TLB
// fills; the payload bytes are charged only as the reading or writing
// domain's own memory traffic — they never cross the invocation plane.
// Prefer a segment over a batch whenever the payload, not the call
// count, is what's being amortized.
type Segment struct {
	s   *System
	seg *shm.Segment
}

// Pages reports the segment's length in pages.
func (sg *Segment) Pages() int { return sg.seg.Pages() }

// Size reports the segment's length in bytes.
func (sg *Segment) Size() int { return sg.seg.Size() }

// Grant issues a grant of the segment to a domain with the given
// rights and returns its unforgeable capability reference. Pass the
// ref to the grantee (typically as a call argument — it crosses as a
// single word); the grantee attaches with Segment.Map or
// System.AttachGrant. Grants are not transferable: the proxy rejects
// a ref delivered to any domain other than its grantee.
func (sg *Segment) Grant(to *Domain, rights api.SegmentRights) (api.GrantRef, error) {
	g, err := sg.seg.Grant(to.d.Ctx, rights)
	if err != nil {
		return 0, err
	}
	return g.Ref(), nil
}

// Map attaches a grant of this segment into its grantee's protection
// domain, returning the live attachment. Like System.AttachGrant but
// scoped: a ref naming some other segment's grant is rejected with
// api.ErrNoGrant instead of silently mapping the wrong segment.
func (sg *Segment) Map(ref api.GrantRef) (*api.Attachment, error) {
	return sg.seg.Attach(ref)
}

// Revoke withdraws one grant of this segment: the grantee's mapping is
// unmapped (TLB shootdowns charged for remotely cached pages), and
// every later attach or access through the grant fails with
// api.ErrSegmentRevoked. A ref naming some other segment's grant is
// rejected with api.ErrNoGrant — a mixed-up ref can never revoke a
// grant the caller didn't mean to touch.
func (sg *Segment) Revoke(ref api.GrantRef) error {
	return sg.seg.Revoke(ref)
}

// Destroy revokes every grant of the segment and releases its frames.
func (sg *Segment) Destroy() error { return sg.seg.Destroy() }

// Store copies p into the segment at off (owner-side access).
func (sg *Segment) Store(off int, p []byte) error { return sg.seg.Store(off, p) }

// Load copies from the segment at off into p (owner-side access).
func (sg *Segment) Load(off int, p []byte) error { return sg.seg.Load(off, p) }

// Ring is a streaming data-plane ring between two protection domains:
// single-producer/single-consumer record slots over a shared segment,
// control and descriptor words in the segment's first pages, one
// doorbell notify per burst. Created with Domain.NewRing; the segment
// is owned by the producing domain and granted read-write to the
// consuming one.
//
// Steady-state cost per record is a few cycles of bookkeeping plus
// the doorbell crossing divided by the burst size — at burst 64,
// under half the cost of a per-transfer segment share+notify. Records
// can be pushed by copy (Push/Pop) or produced and consumed in place
// through the mapping (ProduceOffset/PushInPlace, Peek/Release), in
// which case the payload never moves at all.
//
// Teardown needs no extra bookkeeping: destroying the producer domain
// destroys the segment, destroying the consumer domain revokes its
// grant, and either way the surviving endpoint's next access returns
// api.ErrRingHangup — the revoked-grant tombstone read as
// end-of-stream. Producer.Hangup signals it deliberately.
type Ring struct {
	r *ring.Ring
}

// Producer returns the publishing endpoint, for use by the producing
// domain's code. One goroutine at a time.
func (r *Ring) Producer() *api.RingProducer { return r.r.Producer() }

// Consumer returns the draining endpoint, for use by the consuming
// domain's code. One goroutine at a time.
func (r *Ring) Consumer() *api.RingConsumer { return r.r.Consumer() }

// Slots reports the ring's record capacity.
func (r *Ring) Slots() int { return r.r.Slots() }

// SlotBytes reports the maximum record payload size.
func (r *Ring) SlotBytes() int { return r.r.SlotBytes() }

// Pages reports the backing segment's size in pages.
func (r *Ring) Pages() int { return r.r.Pages() }

// GrantRef returns the consumer-side grant capability.
func (r *Ring) GrantRef() api.GrantRef { return r.r.GrantRef() }

// Close destroys the backing segment; the consumer side observes
// api.ErrRingHangup.
func (r *Ring) Close() error { return r.r.Close() }

// Handle is a typed handle on an instance bound from the name space.
// It pins the binding made at Bind time: later interpositions or
// overrides of the name affect future binds, not this handle.
type Handle struct {
	s    *System
	path string
	inst obj.Instance
}

// Path reports the name the handle was bound from.
func (h *Handle) Path() string { return h.path }

// Class reports the component (not instance) class name.
func (h *Handle) Class() string { return h.inst.Class() }

// Instance returns the underlying instance (object, composition,
// interposer or proxy).
func (h *Handle) Instance() api.Instance { return h.inst }

// Interfaces lists the instance's exported interface names, sorted.
func (h *Handle) Interfaces() []string { return h.inst.InterfaceNames() }

// Interface returns the named exported interface.
func (h *Handle) Interface(name string) (api.Invoker, error) {
	iv, ok := h.inst.Iface(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", obj.ErrNoInterface, name, h.path)
	}
	return iv, nil
}

// Resolve pre-binds one method of one interface: the bind-once /
// invoke-many fast path. The returned handle dispatches by slot index
// with no per-call name lookup.
func (h *Handle) Resolve(iface, method string) (api.MethodHandle, error) {
	iv, err := h.Interface(iface)
	if err != nil {
		return api.MethodHandle{}, err
	}
	return iv.Resolve(method)
}

// Batch returns an empty batch sized for n entries — a convenience
// for the common pattern of vectoring many calls through the methods
// of one bound handle. Entries resolved from other handles may be
// added too; grouping into single crossings follows each entry's own
// route. In the default in-order mode only CONSECUTIVE entries
// sharing one proxy vector in a single crossing, so order same-target
// entries together; a batch that genuinely interleaves independent
// targets should opt in to SetMode(BatchGrouped), which pays one
// crossing per distinct target regardless of entry order.
func (h *Handle) Batch(n int) *Batch { return api.NewBatch(n) }

// Coalesce returns a coalescer wired to the system's virtual clock:
// Submit single calls (typically methods resolved from this handle)
// and they are queued and vectored automatically, flushing at the
// size threshold or when a queued call has waited one crossing's
// worth of virtual time — the break-even thresholds measured by the
// P5 batch sweep. size <= 0 selects the default (16, the knee of the
// curve). For explicit control of both thresholds use
// System.NewCoalescer.
func (h *Handle) Coalesce(size int) *api.Coalescer {
	return h.s.NewCoalescer(size, 0)
}

// Invoke calls a method by name: the string-keyed compatibility path,
// paying an interface and method lookup per call.
func (h *Handle) Invoke(iface, method string, args ...any) ([]any, error) {
	iv, err := h.Interface(iface)
	if err != nil {
		return nil, err
	}
	return iv.Invoke(method, args...)
}
