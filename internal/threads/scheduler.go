package threads

import (
	"errors"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/probe"
)

// Scheduler multiplexes simulated threads over the machine's virtual
// processors. With one CPU (NewScheduler) it dispatches round-robin
// from a single queue, exactly as the original uniprocessor design;
// with more (NewSchedulerCPUs) it runs one dispatch loop per CPU over
// per-CPU run queues with randomized work stealing, so pop-up threads
// from concurrent interrupts genuinely run on distinct CPUs. It also
// owns the sleep queue and charges all thread-related costs.
//
// Scheduler CPU k IS machine CPU k: the run-queue index, the
// mmu.CPUID a thread reports through LastCPU, and the per-CPU TLB the
// thread's Load/Store traffic charges (through the attached Exec
// plane) are one identity. CPU affinity arguments are therefore typed
// mmu.CPUID end to end, with mmu.NoCPU for "no affinity".
//
// Placement and steal order, in priority:
//
//  1. A thread with a CPU binding or a last-run CPU is queued on that
//     CPU (pop-up threads stay on the CPU their event was bound to;
//     re-readied threads keep their TLB-warm CPU).
//  2. An unaffined thread with a node hint (Thread.Spawn records the
//     spawner's node) rotates round-robin across the CPUs of that
//     node — within-node first, so sibling spawns stay on one memory
//     node and spill cross-node only through stealing.
//  3. An unaffined thread with no hint rotates nodes round-robin and
//     then CPUs within the chosen node (the flat global round-robin
//     when no topology is attached).
//
// A thief empties its own queue, then steals half a victim's deque —
// scanning same-node victims first (random start within the node) and
// only then cross-node victims (random start), so rebalancing prefers
// migrations that keep frames local.
type Scheduler struct {
	meter *clock.Meter

	// mu is the global scheduler lock: sleepers, live count, thread
	// IDs, and the wait-queue registrations of the synchronization
	// primitives (sync.go). The per-CPU run queues have their own
	// locks, nested inside mu.
	mu       sync.Mutex
	nextID   uint64
	sleepers []sleeper
	live     int // spawned or promoted, not yet done

	cpus   []runqueue
	rr     atomic.Uint64 // round-robin placement for unaffined threads
	nready atomic.Int64  // threads queued across all run queues

	// exec is the machine access plane dispatched threads run their
	// simulated memory traffic against (hw.Machine implements it).
	// Attached once at boot, before any thread body runs.
	exec Exec

	// NUMA shape for placement, mirroring the machine topology's
	// contiguous layout (CPU k lives on node k / cpusPerNode). Zero
	// nnodes means no topology: flat round-robin placement. nodeRR
	// rotates hint-less threads across nodes; nodeCursor[i] rotates
	// placements within node i (padded so hot spawning nodes do not
	// false-share cursors).
	nnodes      int
	cpusPerNode int
	nodeRR      atomic.Uint64
	nodeCursor  []nodeCounter

	// Idle coordination for the multi-CPU dispatch loops. idleMu nests
	// inside mu (enqueues signal while callers hold mu) and is never
	// held while taking mu. nparked mirrors parked so the enqueue hot
	// path can skip the mutex when no CPU is waiting.
	idleMu   sync.Mutex
	idleCond *sync.Cond
	parked   int
	nparked  atomic.Int64
	runDone  bool

	// Persistent dispatcher pool: one parked host worker per CPU,
	// spawned on the first parallel run and reused by every later one.
	// genMu guards the run-generation counter the workers key on:
	// RunUntilIdle bumps runGen and broadcasts, each worker runs its
	// CPU's dispatch loop for that generation, and the last one out
	// wakes the pump. genMu is a leaf lock: never held while taking mu
	// or idleMu.
	genMu         sync.Mutex
	genCond       *sync.Cond
	runGen        uint64
	genActive     int
	workersUp     bool
	poolID        uint64       // bumped by Shutdown; workers of older pools exit
	dispatched    atomic.Int64 // dispatches of the current generation
	workerSpawns  atomic.Uint64
	runMu         sync.Mutex // serializes RunUntilIdle calls
	steals        atomic.Uint64
	stolenThreads atomic.Uint64
	parks         atomic.Uint64
}

// runqueue is one CPU's local deque: the owner pops from the front
// (FIFO, preserving round-robin fairness), thieves steal from the
// back. Queues live by value in one contiguous array, padded to a
// 64-byte stride, so adjacent queues' locks do not false-share.
type runqueue struct {
	mu sync.Mutex
	q  []*Thread
	_  [32]byte
}

type sleeper struct {
	t        *Thread
	deadline uint64
}

// nodeCounter is one node's placement cursor, padded to a 64-byte
// stride like the run queues.
type nodeCounter struct {
	c atomic.Uint64
	_ [56]byte
}

// Exec is the simulated-machine access surface dispatched threads run
// against: the initiator-threaded Load/Store/Touch forms of
// hw.Machine. The scheduler holds it so every thread body's simulated
// access goes through the CPU the thread is dispatched on.
type Exec interface {
	LoadOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, buf []byte) error
	StoreOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, buf []byte) error
	TouchOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, access mmu.Access) error
	TouchTaggedOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, access mmu.Access, token uint64) error
}

// ErrNoExec is returned by thread memory accesses when no machine
// access plane has been attached (a scheduler running without a
// machine, as in unit tests).
var ErrNoExec = errors.New("threads: no machine access plane attached")

// ErrNotDispatched is returned by thread memory accesses from a thread
// that has never been dispatched and carries no CPU binding: it has no
// CPU identity to charge against yet.
var ErrNotDispatched = errors.New("threads: thread has no CPU identity (never dispatched)")

// AttachExec wires the machine access plane thread bodies perform
// their simulated memory traffic through. Called once at boot, before
// any thread body runs; the kernel attaches the machine itself.
func (s *Scheduler) AttachExec(e Exec) { s.exec = e }

// SetTopology teaches placement the machine's NUMA shape: nodes
// contiguous groups of cpusPerNode CPUs, matching hw.Topology's
// layout. Called at boot; a shape that does not cover the scheduler's
// CPUs exactly panics (a construction-time programming error).
func (s *Scheduler) SetTopology(nodes, cpusPerNode int) {
	if nodes <= 0 || cpusPerNode <= 0 || nodes*cpusPerNode != len(s.cpus) {
		panic("threads: topology does not match scheduler CPUs")
	}
	s.nnodes = nodes
	s.cpusPerNode = cpusPerNode
	s.nodeCursor = make([]nodeCounter, nodes)
}

// NewScheduler builds a single-CPU scheduler charging against meter.
func NewScheduler(meter *clock.Meter) *Scheduler {
	return NewSchedulerCPUs(meter, 1)
}

// NewSchedulerCPUs builds a scheduler dispatching over ncpu virtual
// CPUs (ncpu <= 0 means 1).
func NewSchedulerCPUs(meter *clock.Meter, ncpu int) *Scheduler {
	if ncpu <= 0 {
		ncpu = 1
	}
	s := &Scheduler{meter: meter, cpus: make([]runqueue, ncpu)}
	s.idleCond = sync.NewCond(&s.idleMu)
	s.genCond = sync.NewCond(&s.genMu)
	return s
}

// Meter exposes the scheduler's meter (used by the event service).
func (s *Scheduler) Meter() *clock.Meter { return s.meter }

// NumCPUs reports the number of virtual CPUs the scheduler dispatches
// on.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// Steals reports how many steal operations have taken work from
// another CPU's run queue since construction. One operation moves up
// to half the victim's deque (StolenThreads counts the threads).
func (s *Scheduler) Steals() uint64 { return s.steals.Load() }

// StolenThreads reports how many threads have migrated between CPUs
// through steal operations. StolenThreads/Steals is the rebalancing
// batch factor: near 1 under trickle load, climbing under bursty
// pop-up load where whole half-deques move at once.
func (s *Scheduler) StolenThreads() uint64 { return s.stolenThreads.Load() }

// Parks reports how many times an idle CPU parked waiting for work.
func (s *Scheduler) Parks() uint64 { return s.parks.Load() }

// DispatcherSpawns reports how many host dispatcher goroutines the
// scheduler has ever started. The persistent pool spawns one per CPU
// on the first parallel run and reuses them: the count stays at
// NumCPUs no matter how many times the scheduler is pumped.
func (s *Scheduler) DispatcherSpawns() uint64 { return s.workerSpawns.Load() }

func (s *Scheduler) newThread(name string, proto bool) *Thread {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.live++
	s.mu.Unlock()
	t := &Thread{
		id:        id,
		name:      name,
		sched:     s,
		proto:     proto,
		resume:    make(chan struct{}, 1),
		parked:    make(chan struct{}, 1),
		protoDone: make(chan bool, 1),
		done:      make(chan struct{}),
	}
	t.cpu.Store(int32(mmu.NoCPU))
	t.node.Store(-1)
	return t
}

// Spawn creates a real thread that will run fn when scheduled. The
// full thread-creation cost is charged immediately.
func (s *Scheduler) Spawn(name string, fn func(*Thread)) *Thread {
	return s.SpawnOn(mmu.NoCPU, name, fn)
}

// spawnNear is Spawn with a placement hint: the new thread is
// unaffined (stealable, no pinned CPU) but its first placement rotates
// within origin's NUMA node. Thread.Spawn passes the spawner's CPU.
func (s *Scheduler) spawnNear(origin mmu.CPUID, name string, fn func(*Thread)) *Thread {
	node := int32(-1)
	if s.nnodes > 0 && origin >= 0 && int(origin) < len(s.cpus) {
		node = int32(int(origin) / s.cpusPerNode)
	}
	return s.spawn(mmu.NoCPU, node, name, fn)
}

// SpawnOn is Spawn with a CPU affinity: the thread is queued on (and
// keeps returning to) the given CPU's run queue, unless stolen.
// mmu.NoCPU means no affinity (round-robin placement; see the
// placement order in the package comment). The event service uses it
// to route pop-up threads to the CPU an interrupt was bound to.
func (s *Scheduler) SpawnOn(cpu mmu.CPUID, name string, fn func(*Thread)) *Thread {
	return s.spawn(cpu, -1, name, fn)
}

func (s *Scheduler) spawn(cpu mmu.CPUID, node int32, name string, fn func(*Thread)) *Thread {
	s.meter.Charge(clock.OpThreadCreate)
	t := s.newThread(name, false)
	if cpu >= 0 && int(cpu) < len(s.cpus) {
		t.cpu.Store(int32(cpu))
	}
	t.node.Store(node)
	go func() {
		<-t.resume
		t.setState(StateRunning)
		fn(t)
		s.finish(t)
	}()
	s.mu.Lock()
	t.setState(StateReady)
	s.ready(t)
	s.mu.Unlock()
	return t
}

// PopUpEager turns an event into a thread the expensive way: a full
// thread is created and scheduled for every event (the baseline the
// proto-thread optimization is measured against).
func (s *Scheduler) PopUpEager(name string, fn func(*Thread)) *Thread {
	return s.Spawn(name, fn)
}

// PopUpEagerOn is PopUpEager with a CPU affinity.
func (s *Scheduler) PopUpEagerOn(cpu mmu.CPUID, name string, fn func(*Thread)) *Thread {
	return s.SpawnOn(cpu, name, fn)
}

// PopUpProto runs fn as a proto-thread: it executes immediately on the
// caller's (interrupt) context for the cheap proto-thread cost. If fn
// runs to completion without blocking, no thread is ever created. The
// moment fn blocks, yields or sleeps, the proto-thread is promoted to
// a real thread (promotion + creation costs are charged) and PopUpProto
// returns while the new thread continues under the scheduler.
//
// The returned thread handle reports, via Promoted, which path was
// taken; ran is true when fn completed inline.
func (s *Scheduler) PopUpProto(name string, fn func(*Thread)) (t *Thread, ran bool) {
	return s.PopUpProtoOn(mmu.NoCPU, name, fn)
}

// PopUpProtoOn is PopUpProto with a CPU affinity for the promotion
// path: a proto-thread that blocks is queued on (and keeps returning
// to) the given CPU, so a promoted interrupt handler stays on the CPU
// its event was bound to — and its simulated memory traffic keeps
// charging that CPU's TLB. The inline fast path is unaffected.
// mmu.NoCPU means no affinity.
func (s *Scheduler) PopUpProtoOn(cpu mmu.CPUID, name string, fn func(*Thread)) (t *Thread, ran bool) {
	s.meter.Charge(clock.OpProtoThread)
	t = s.newThread(name, true)
	if cpu >= 0 && int(cpu) < len(s.cpus) {
		t.cpu.Store(int32(cpu))
	}
	t.setState(StateRunning)
	go func() {
		fn(t)
		s.finish(t)
	}()
	completed := <-t.protoDone
	return t, completed
}

// chargePromotion accounts for turning a proto-thread into a real
// thread. Callers hold s.mu.
func (s *Scheduler) chargePromotion() {
	s.meter.Charge(clock.OpPromote)
	s.meter.Charge(clock.OpThreadCreate)
}

// finish retires a thread.
func (s *Scheduler) finish(t *Thread) {
	s.mu.Lock()
	t.setState(StateDone)
	s.live--
	s.mu.Unlock()
	close(t.done)
	t.stop(true)
}

// ready queues t for dispatch: on its affine CPU when it has one, else
// round-robin. Thread-state transitions call it holding s.mu; the run
// queues have their own locks, so that nesting is the only ordering
// requirement. The enqueue is visible to a concurrent dispatcher the
// moment the queue lock drops — the thread may be popped (and its
// resume buffered) before it has even parked; the baton protocol
// absorbs this.
func (s *Scheduler) ready(t *Thread) {
	cpu := 0
	if n := len(s.cpus); n > 1 {
		if a := int(t.cpu.Load()); a >= 0 && a < n {
			cpu = a
		} else if s.nnodes > 0 {
			// Node-aware placement (order documented on Scheduler):
			// rotate within the hinted node; hint-less threads rotate
			// nodes first, then CPUs within the node they landed on.
			node := int(t.node.Load())
			if node < 0 || node >= s.nnodes {
				node = int(s.nodeRR.Add(1)-1) % s.nnodes
			}
			within := int(s.nodeCursor[node].c.Add(1)-1) % s.cpusPerNode
			cpu = node*s.cpusPerNode + within
		} else {
			cpu = int(s.rr.Add(1)-1) % n
		}
	}
	rq := &s.cpus[cpu]
	// Count before enqueueing: quiesce declares the run done only when
	// nready is zero under idleMu, so an enqueue in flight must be
	// visible in the counter before (never after) it is visible in a
	// queue — over-counting briefly just makes an idle CPU rescan;
	// under-counting would let the run end with a thread stranded.
	s.nready.Add(1)
	rq.mu.Lock()
	rq.q = append(rq.q, t)
	rq.mu.Unlock()
	// Wake a parked CPU — but skip the (global) idleMu entirely when
	// nobody is parked, so saturated enqueues stay on per-CPU locks.
	// No wakeup is lost: a parker bumps nparked before re-checking
	// nready under idleMu, and this enqueue bumped nready before
	// reading nparked; sequentially consistent atomics forbid both
	// sides observing the other's pre-update value.
	if len(s.cpus) > 1 && s.nparked.Load() > 0 {
		s.idleMu.Lock()
		s.idleCond.Signal()
		s.idleMu.Unlock()
	}
}

// Wake moves a blocked thread to the ready queue. Synchronization
// primitives call it with the scheduler lock held via wakeLocked; the
// exported form is for event sources living outside this package.
func (s *Scheduler) Wake(t *Thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wakeLocked(t)
}

func (s *Scheduler) wakeLocked(t *Thread) {
	t.setState(StateReady)
	if probe.Enabled() {
		s.meter.Emit(int(t.cpu.Load()), probe.KindWake, uint32(clock.KernelDomain), t.id, 0)
	}
	s.ready(t)
}

// RunUntilIdle dispatches ready threads until none remain. When every
// run queue drains but threads are sleeping on the virtual clock, the
// clock is advanced to the earliest deadline and the sleepers are
// woken. With one CPU it dispatches inline on the caller, round-robin,
// exactly as the original uniprocessor scheduler; with more it runs
// one dispatch loop per CPU, each popping its local queue, stealing
// from random victims when empty, and parking when there is nothing to
// steal. It returns the number of dispatches performed.
func (s *Scheduler) RunUntilIdle() int {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if len(s.cpus) == 1 {
		return s.runSequential()
	}
	return s.runParallel()
}

func (s *Scheduler) runSequential() int {
	dispatches := 0
	for {
		t := s.next()
		if t == nil {
			return dispatches
		}
		dispatches++
		s.dispatch(0, t)
	}
}

// dispatch hands the processor to t and waits for it to stop running.
func (s *Scheduler) dispatch(cpu int, t *Thread) {
	t.cpu.Store(int32(cpu))
	s.meter.Charge(clock.OpSchedule)
	t.resume <- struct{}{}
	<-t.parked // until the thread stops running again
}

// next pops the next ready thread for the single-CPU path, advancing
// virtual time over sleep gaps when necessary. It returns nil when the
// system is idle. Holding s.mu across the empty-queue check and the
// clock advance keeps them atomic against concurrent Spawns, exactly
// as the original single-runqueue scheduler behaved.
func (s *Scheduler) next() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.pop(0); t != nil {
			return t
		}
		if !s.advanceDueLocked() {
			return nil
		}
	}
}

// pop takes the oldest thread from one CPU's queue.
func (s *Scheduler) pop(cpu int) *Thread {
	rq := &s.cpus[cpu]
	rq.mu.Lock()
	if len(rq.q) == 0 {
		rq.mu.Unlock()
		return nil
	}
	t := rq.q[0]
	rq.q = rq.q[1:]
	rq.mu.Unlock()
	s.nready.Add(-1)
	return t
}

// stealFor scans other CPUs' queues and, at the first non-empty one,
// takes HALF the deque from the back (at least one thread; the owner
// keeps the front half and its FIFO order). With a NUMA topology the
// scan covers same-node victims first (random start within the node),
// then the rest of the machine (random start) — rebalancing prefers
// migrations that keep the migrated threads' frames local. The newest
// stolen thread is returned for immediate dispatch and the rest land
// on the thief's own queue, so a burst concentrated on one CPU — many
// pop-up threads from one interrupt line — spreads across the
// topology in O(log n) steal operations instead of O(n).
func (s *Scheduler) stealFor(me int, rng *clock.Rand) *Thread {
	if s.nnodes > 0 {
		base := (me / s.cpusPerNode) * s.cpusPerNode
		if t := s.stealScan(me, base, s.cpusPerNode, rng); t != nil {
			return t
		}
	}
	return s.stealScan(me, 0, len(s.cpus), rng)
}

// stealScan is one steal pass over the width CPUs starting at base,
// from a random start within the window, skipping the thief itself.
func (s *Scheduler) stealScan(me, base, width int, rng *clock.Rand) *Thread {
	start := rng.Intn(width)
	for i := 0; i < width; i++ {
		v := base + (start+i)%width
		if v == me {
			continue
		}
		rq := &s.cpus[v]
		rq.mu.Lock()
		ln := len(rq.q)
		if ln == 0 {
			rq.mu.Unlock()
			continue
		}
		take := (ln + 1) / 2
		batch := make([]*Thread, take)
		copy(batch, rq.q[ln-take:])
		// Clear the vacated tail so the victim's backing array does
		// not pin migrated threads.
		for j := ln - take; j < ln; j++ {
			rq.q[j] = nil
		}
		rq.q = rq.q[:ln-take]
		rq.mu.Unlock()
		// Threads before operations: a reader computing the batch factor
		// StolenThreads/Steals must never observe a steal whose threads
		// have not landed in the numerator yet (the ratio would dip below
		// one thread per operation, which is impossible).
		s.stolenThreads.Add(uint64(take))
		s.steals.Add(1)
		if probe.Enabled() {
			s.meter.Emit(me, probe.KindSteal, uint32(clock.KernelDomain), uint64(v), uint64(take))
		}

		// Run the newest now; park the remainder on our own queue.
		// Their nready counts are unchanged — they stay ready, only
		// homed elsewhere — except for the one we dispatch ourselves.
		t := batch[take-1]
		s.nready.Add(-1)
		if rest := batch[:take-1]; len(rest) > 0 {
			my := &s.cpus[me]
			my.mu.Lock()
			my.q = append(my.q, rest...)
			my.mu.Unlock()
			// The surplus is stealable work other idle CPUs should see:
			// wake them as an enqueue would. Broadcast, not Signal — a
			// half-deque can feed several parked CPUs at once.
			if s.nparked.Load() > 0 {
				s.idleMu.Lock()
				s.idleCond.Broadcast()
				s.idleMu.Unlock()
			}
		}
		return t
	}
	return nil
}

// advanceDueLocked advances the virtual clock to the earliest sleep
// deadline and wakes every due sleeper. It returns false when there is
// nothing to advance to (no sleepers). Callers hold s.mu.
func (s *Scheduler) advanceDueLocked() bool {
	if len(s.sleepers) == 0 {
		return false
	}
	earliest := s.sleepers[0].deadline
	for _, sl := range s.sleepers[1:] {
		if sl.deadline < earliest {
			earliest = sl.deadline
		}
	}
	now := s.meter.Clock.Now()
	if earliest > now {
		// Attributed so the ledger's total still equals the clock: the
		// idle fast-forward lands in the kernel row's idle pseudo-slot.
		s.meter.AdvanceAttributed(earliest - now)
	}
	now = s.meter.Clock.Now()
	var rest []sleeper
	for _, sl := range s.sleepers {
		if sl.deadline <= now {
			s.wakeLocked(sl.t)
		} else {
			rest = append(rest, sl)
		}
	}
	s.sleepers = rest
	return true
}

// runParallel pumps the persistent dispatcher pool through one run
// generation and waits for it to go idle: every queue empty, every
// CPU parked, and no sleepers left to advance the clock to. The pool
// — one parked host goroutine per CPU — is spawned once, on the first
// parallel run, and reused by every later pump: a long-running
// embedding that calls RunUntilIdle repeatedly pays no per-call
// goroutine creation, only a broadcast.
func (s *Scheduler) runParallel() int {
	s.idleMu.Lock()
	s.runDone = false
	s.parked = 0
	s.nparked.Store(0)
	s.idleMu.Unlock()
	s.dispatched.Store(0)
	s.genMu.Lock()
	if !s.workersUp {
		s.workersUp = true
		for i := range s.cpus {
			s.workerSpawns.Add(1)
			go s.dispatcher(i, s.poolID)
		}
	}
	s.runGen++
	s.genActive = len(s.cpus)
	s.genCond.Broadcast()
	for s.genActive > 0 {
		s.genCond.Wait()
	}
	s.genMu.Unlock()
	return int(s.dispatched.Load())
}

// dispatcher is one CPU's persistent host worker: it parks on the
// generation condvar between runs, runs its CPU's dispatch loop for
// each new generation, and — as the last worker out of a generation —
// wakes the pump. A worker that is slow re-parking cannot miss a
// generation: it compares the counter, not the broadcast. A worker
// whose pool has been shut down exits at the park point without ever
// touching a newer pool's generation accounting.
func (s *Scheduler) dispatcher(cpu int, pool uint64) {
	rng := clock.NewRand(uint64(cpu)*0x9e3779b9 + 1)
	var gen uint64
	for {
		s.genMu.Lock()
		for s.runGen == gen && s.poolID == pool {
			s.genCond.Wait()
		}
		if s.poolID != pool {
			s.genMu.Unlock()
			return
		}
		gen = s.runGen
		s.genMu.Unlock()
		s.dispatchLoop(cpu, rng)
		s.genMu.Lock()
		s.genActive--
		if s.genActive == 0 {
			s.genCond.Broadcast()
		}
		s.genMu.Unlock()
	}
}

// Shutdown releases the persistent dispatcher pool: every parked
// worker exits, so an embedding that discards a multi-CPU scheduler
// does not strand NumCPUs host goroutines for the process lifetime.
// It waits for any in-flight RunUntilIdle to finish first. The
// scheduler remains usable — the next RunUntilIdle simply spawns a
// fresh pool — so Shutdown is a release of idle resources, not a
// terminal state. Single-CPU schedulers have no pool and Shutdown is
// a no-op.
func (s *Scheduler) Shutdown() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.genMu.Lock()
	if s.workersUp {
		s.workersUp = false
		s.poolID++
		s.genCond.Broadcast()
	}
	s.genMu.Unlock()
}

func (s *Scheduler) dispatchLoop(cpu int, rng *clock.Rand) {
	for {
		t := s.pop(cpu)
		if t == nil {
			t = s.stealFor(cpu, rng)
		}
		if t != nil {
			s.dispatched.Add(1)
			s.dispatch(cpu, t)
			continue
		}
		if s.quiesce(cpu) {
			return
		}
	}
}

// quiesce parks an idle CPU until work appears, returning true when the
// run is over. The last CPU to park is responsible for the virtual
// clock: if every queue is empty and threads sleep on the clock, it
// advances time and wakes them; if there is nothing left at all, it
// declares the run done and releases everyone.
func (s *Scheduler) quiesce(cpu int) (done bool) {
	s.idleMu.Lock()
	s.parked++
	s.nparked.Add(1)
	if s.parked == len(s.cpus) && s.nready.Load() == 0 {
		// advanceDueLocked needs s.mu, which must never be acquired
		// under idleMu; drop and re-take. Another CPU waking in the
		// window only delays the done declaration, never corrupts it.
		s.idleMu.Unlock()
		s.mu.Lock()
		progressed := s.nready.Load() > 0 || s.advanceDueLocked()
		s.mu.Unlock()
		s.idleMu.Lock()
		if !progressed && s.nready.Load() == 0 && s.parked == len(s.cpus) && !s.runDone {
			s.runDone = true
			s.idleCond.Broadcast()
		}
	}
	for !s.runDone && s.nready.Load() == 0 {
		s.parks.Add(1)
		if probe.Enabled() {
			s.meter.Emit(cpu, probe.KindPark, uint32(clock.KernelDomain), 0, 0)
		}
		s.idleCond.Wait()
	}
	done = s.runDone
	s.parked--
	s.nparked.Add(-1)
	s.idleMu.Unlock()
	return done
}

// ReadyCount reports the number of threads waiting to run.
func (s *Scheduler) ReadyCount() int {
	return int(s.nready.Load())
}

// LiveCount reports spawned/promoted threads that have not finished.
func (s *Scheduler) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}
