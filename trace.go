package paramecium

import (
	"io"

	"paramecium/api"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/probe"
	"paramecium/internal/trace"
)

// TraceOptions configures the kernel flight recorder; see WithTracing.
// The zero value selects defaults.
type TraceOptions struct {
	// RingCapacity sizes each per-CPU event ring in events (0 selects
	// the default of 4096). Rings retain the most recent events; the
	// cycle ledger is exact regardless of ring capacity.
	RingCapacity int
}

// WithTracing boots the system with the kernel flight recorder on:
// per-CPU event rings recording crossings, batch dispatches, faults,
// TLB traffic, doorbells, grant motion and scheduler activity — each
// event stamped with virtual-clock cycles, CPU and paying domain — plus
// a per-domain cycle ledger every meter charge rolls up into. Recording
// is free in virtual time (observing the simulation does not perturb
// it), and with tracing off the emit path is a single atomic load, so
// untraced systems measure exactly as before. Read the results with
// System.TraceSnapshot and Domain.Cycles, or run cmd/paratrace.
func WithTracing(opts TraceOptions) Option {
	return func(c *core.Config) {
		c.Trace = true
		c.TraceRingCapacity = opts.RingCapacity
	}
}

// Tracing reports whether the system booted with the flight recorder.
func (s *System) Tracing() bool { return s.k.Meter.Recorder() != nil }

// Cycles reports the total virtual cycles attributed to this domain in
// the cycle ledger — what the domain has paid for its crossings, copies,
// TLB traffic and shootdowns since boot. Zero when the system did not
// boot WithTracing. The row survives Destroy: a dead domain's bill
// stays readable (frozen) rather than vanishing with the domain.
func (d *Domain) Cycles() uint64 {
	led := d.s.k.Meter.Ledger()
	if led == nil {
		return 0
	}
	return led.DomainCycles(uint32(d.d.Ctx))
}

// TraceSnapshot is a point-in-time copy of everything the flight
// recorder holds: the per-CPU event timelines, the per-domain cycle
// ledger, and the method histograms of every Tracer installed through
// Handle.Trace. Snapshots are safe to take while the system runs.
type TraceSnapshot struct {
	// Events holds each CPU's retained event window, ordered by virtual
	// time. Nil when the system did not boot WithTracing.
	Events [][]api.TraceEvent
	// Ledger holds one row per protection domain that has ever been
	// charged, sorted by domain context id. Nil without WithTracing.
	Ledger []api.LedgerRow
	// Methods holds the merged per-method call histograms of every
	// tracer installed with Handle.Trace, grouped by traced path.
	Methods []TracedMethods
}

// TracedMethods is one traced name's method stats within a snapshot.
type TracedMethods struct {
	Path    string
	Methods []api.MethodSnapshot
}

// TraceSnapshot copies the flight recorder's current state; see
// TraceSnapshot (type). On a system booted without WithTracing the
// event and ledger sections are nil but tracer histograms still appear.
func (s *System) TraceSnapshot() *TraceSnapshot {
	ts := &TraceSnapshot{}
	if rec := s.k.Meter.Recorder(); rec != nil {
		ts.Events = rec.Snapshot()
	}
	if led := s.k.Meter.Ledger(); led != nil {
		ts.Ledger = led.Snapshot()
	}
	s.traceMu.Lock()
	tracers := make([]tracedPath, len(s.tracers))
	copy(tracers, s.tracers)
	s.traceMu.Unlock()
	for _, tp := range tracers {
		ts.Methods = append(ts.Methods, TracedMethods{
			Path:    tp.path,
			Methods: tp.tr.Snapshot(),
		})
	}
	return ts
}

// WriteLedger renders the snapshot's per-domain cycle ledger as a text
// table: one row per domain with its total and the crossing / wire /
// copy / shootdown class split, then each domain's topN hottest
// operations. topN <= 0 omits the hot-op section.
func (ts *TraceSnapshot) WriteLedger(w io.Writer, topN int) error {
	return probe.WriteLedgerTable(w, ts.Ledger, clock.LedgerOpName, clock.LedgerOpClass, topN)
}

// WriteChrome renders the snapshot's event timelines as Chrome
// trace_event JSON (load it in chrome://tracing or Perfetto; one
// virtual cycle is rendered as one microsecond, one CPU per track).
func (ts *TraceSnapshot) WriteChrome(w io.Writer) error {
	return probe.WriteChromeTrace(w, ts.Events)
}

// WriteTimeline renders the snapshot's event timelines as per-CPU
// text, ordered by virtual time within each CPU.
func (ts *TraceSnapshot) WriteTimeline(w io.Writer) error {
	return probe.WriteTimeline(w, ts.Events)
}

// WriteMethods renders the snapshot's interposed-tracer histograms:
// per traced path, the calls / errors / cycles summary of each method.
func (ts *TraceSnapshot) WriteMethods(w io.Writer) error {
	for _, tm := range ts.Methods {
		if _, err := io.WriteString(w, "== traced "+tm.Path+" ==\n"); err != nil {
			return err
		}
		for _, m := range tm.Methods {
			h := m.Stats.Hist
			if _, err := io.WriteString(w, "  "+m.Key+": "+h.String()+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// tracedPath records one Handle.Trace installation for snapshot merge.
type tracedPath struct {
	path string
	tr   *trace.Tracer
}

// Trace interposes a measurement tracer on the handle's name: every
// method of every interface the instance exports is counted and timed
// in virtual cycles, without the target or its callers changing — the
// paper's monitoring tools built from interposition. All future binds
// of the path resolve through the tracer; this handle and other
// existing handles are unaffected (handle-replacement semantics).
// The tracer's histograms are merged into System.TraceSnapshot.
func (h *Handle) Trace() (*api.Tracer, error) {
	var tr *trace.Tracer
	if _, err := h.s.Interpose(h.path, func(target api.Instance) (api.Instance, error) {
		t, err := trace.NewTracer(target, h.s.k.Meter)
		if err != nil {
			return nil, err
		}
		tr = t
		return t.Agent(), nil
	}); err != nil {
		return nil, err
	}
	h.s.traceMu.Lock()
	h.s.tracers = append(h.s.tracers, tracedPath{path: h.path, tr: tr})
	h.s.traceMu.Unlock()
	return tr, nil
}
