package clock

// Rand is a small deterministic pseudo-random generator (xorshift64*)
// used by workload generators so that every experiment is reproducible
// from its seed alone. It is intentionally not cryptographic.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because xorshift has an all-zero fixed
// point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("clock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}
