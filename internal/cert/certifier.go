package cert

import (
	"errors"
	"fmt"
)

// ErrRefused is returned by a Certifier that declines a component
// without implying the component is bad — "when the automatic program
// correctness prover decides that it cannot complete the proof, it
// might turn the problem over to the system administrator." The escape
// hatch falls through to the next delegate on ErrRefused.
var ErrRefused = errors.New("cert: certifier refused")

// Certifier is a certification delegate: something that can examine a
// component image and issue a certificate for it. Delegates may be
// programs (type-safe compilers, correctness provers), test teams, or
// people; here they are all modelled as policy functions over the
// image plus a signing key with a delegation.
type Certifier interface {
	// Name returns the delegate name (must match its Delegation).
	Name() string
	// Certify examines image and either issues a certificate with
	// privileges up to the delegate's mask, returns ErrRefused to pass
	// the decision on, or returns another error to abort.
	Certify(component string, image []byte, want Privilege) (*Certificate, error)
}

// KeyCertifier certifies anything presented to it, up to its privilege
// mask — the model of a human administrator who hand-checks components
// out of band. An optional Policy can restrict it.
type KeyCertifier struct {
	name string
	key  KeyPair
	max  Privilege
	// Policy, if non-nil, inspects the image; returning false refuses
	// certification (ErrRefused). This models delegates with a limited
	// application domain, e.g. a compiler that only recognizes its own
	// output format.
	Policy func(component string, image []byte) bool
}

// NewKeyCertifier builds a certifier signing with key and bounded by
// max.
func NewKeyCertifier(name string, key KeyPair, max Privilege) *KeyCertifier {
	return &KeyCertifier{name: name, key: key, max: max}
}

// Name implements Certifier.
func (k *KeyCertifier) Name() string { return k.name }

// Key returns the certifier's key pair (needed to register chains).
func (k *KeyCertifier) Key() KeyPair { return k.key }

// Certify implements Certifier.
func (k *KeyCertifier) Certify(component string, image []byte, want Privilege) (*Certificate, error) {
	if !k.max.Has(want) {
		return nil, fmt.Errorf("%w: %q cannot grant %v (max %v)", ErrRefused, k.name, want, k.max)
	}
	if k.Policy != nil && !k.Policy(component, image) {
		return nil, fmt.Errorf("%w: %q policy rejected %q", ErrRefused, k.name, component)
	}
	c := &Certificate{
		Component: component,
		Digest:    DigestImage(nil, image),
		Privilege: want,
		Issuer:    k.name,
	}
	c.Signature = k.key.Sign(c.SigningBytes())
	return c, nil
}

// EscapeHatch is an ordered list of certifiers tried in preference
// order. "These subordinates may be ordered in preference and provide
// an escape hatch if one of the subordinates fails to certify."
type EscapeHatch struct {
	certifiers []Certifier
}

// NewEscapeHatch builds the chain in the given preference order.
func NewEscapeHatch(certifiers ...Certifier) *EscapeHatch {
	return &EscapeHatch{certifiers: certifiers}
}

// Certify tries each delegate in order. Refusals fall through; any
// other error aborts immediately. If every delegate refuses, the
// joined refusal errors are returned (wrapping ErrRefused).
func (e *EscapeHatch) Certify(component string, image []byte, want Privilege) (*Certificate, error) {
	if len(e.certifiers) == 0 {
		return nil, fmt.Errorf("%w: no certifiers configured", ErrRefused)
	}
	var refusals []error
	for _, c := range e.certifiers {
		cert, err := c.Certify(component, image, want)
		if err == nil {
			return cert, nil
		}
		if errors.Is(err, ErrRefused) {
			refusals = append(refusals, err)
			continue
		}
		return nil, fmt.Errorf("cert: delegate %q failed: %w", c.Name(), err)
	}
	return nil, errors.Join(refusals...)
}

// Names lists the delegates in preference order.
func (e *EscapeHatch) Names() []string {
	out := make([]string, len(e.certifiers))
	for i, c := range e.certifiers {
		out[i] = c.Name()
	}
	return out
}
